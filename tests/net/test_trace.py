"""Unit tests for the message trace tap."""

import pytest

from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net import Category, Message, Node, Scope
from repro.net.context import NetworkContext
from repro.net.trace import MessageTrace


class Sink:
    def on_message(self, msg):
        pass


def make_net():
    ctx = NetworkContext.build(seed=1, transmission_range=150.0)
    nodes = []
    for i in range(3):
        node = Node(i, Stationary(Point(100 + 120 * i, 500)))
        node.agent = Sink()
        ctx.topology.add_node(node)
        nodes.append(node)
    return ctx, nodes


def test_records_unicasts():
    ctx, nodes = make_net()
    trace = MessageTrace().attach(ctx.transport)
    ctx.transport.send(nodes[0], nodes[2], Message("PING", 0, 2),
                       category=Category.CONFIG)
    ctx.sim.run()
    trace.detach()
    events = list(trace.unicasts())
    assert len(events) == 1
    event = events[0]
    assert (event.mtype, event.src, event.dst, event.hops) == ("PING", 0, 2, 2)
    assert event.category == "config"
    assert event.delivered


def test_records_floods():
    ctx, nodes = make_net()
    trace = MessageTrace().attach(ctx.transport)
    ctx.transport.send(nodes[0], None, Message("WAVE", 0, None),
                       category=Category.RECLAMATION, scope=Scope.FLOOD)
    trace.detach()
    floods = list(trace.floods())
    assert len(floods) == 1
    assert floods[0].mtype == "WAVE"
    assert floods[0].dst is None


def test_failed_unicast_recorded_as_undelivered():
    ctx, nodes = make_net()
    nodes[2].kill()
    ctx.topology.invalidate()
    trace = MessageTrace().attach(ctx.transport)
    ctx.transport.send(nodes[0], nodes[2], Message("PING", 0, 2),
                       category=Category.CONFIG)
    trace.detach()
    assert list(trace.unicasts(delivered_only=True)) == []
    assert len(list(trace.unicasts(delivered_only=False))) == 1


def test_mtype_filter():
    ctx, nodes = make_net()
    trace = MessageTrace(mtypes=["KEEP"]).attach(ctx.transport)
    ctx.transport.send(nodes[0], nodes[1], Message("KEEP", 0, 1),
                       category=Category.CONFIG)
    ctx.transport.send(nodes[0], nodes[1], Message("DROP", 0, 1),
                       category=Category.CONFIG)
    trace.detach()
    assert trace.message_types() == ["KEEP"]


def test_detach_silences_recording():
    ctx, nodes = make_net()
    assert not ctx.transport.obs  # no subscribers: bus stays falsy
    trace = MessageTrace().attach(ctx.transport)
    assert ctx.transport.obs and trace.is_attached
    trace.detach()
    assert not ctx.transport.obs and not trace.is_attached
    # Sends after detach are not recorded.
    ctx.transport.send(nodes[0], nodes[1], Message("PING", 0, 1),
                       category=Category.CONFIG)
    assert len(trace) == 0
    # Detaching twice is harmless.
    trace.detach()


def test_double_attach_rejected():
    ctx, _ = make_net()
    trace = MessageTrace().attach(ctx.transport)
    with pytest.raises(RuntimeError):
        trace.attach(ctx.transport)
    trace.detach()


def test_between_query():
    ctx, nodes = make_net()
    trace = MessageTrace().attach(ctx.transport)
    ctx.transport.send(nodes[0], nodes[1], Message("A", 0, 1),
                       category=Category.CONFIG)
    ctx.transport.send(nodes[1], nodes[0], Message("B", 1, 0),
                       category=Category.CONFIG)
    ctx.transport.send(nodes[0], nodes[2], Message("C", 0, 2),
                       category=Category.CONFIG)
    trace.detach()
    assert [e.mtype for e in trace.between(0, 1)] == ["A", "B"]


def test_context_manager_detaches():
    ctx, nodes = make_net()
    with MessageTrace().attach(ctx.transport) as trace:
        ctx.transport.send(nodes[0], nodes[1], Message("A", 0, 1),
                           category=Category.CONFIG)
    assert len(trace) == 1
    assert not trace.is_attached and not ctx.transport.obs


def test_attached_classmethod_context_manager():
    ctx, nodes = make_net()
    with MessageTrace.attached(ctx.transport) as trace:
        ctx.transport.send(nodes[0], nodes[1], Message("A", 0, 1),
                           category=Category.CONFIG)
    assert len(trace) == 1
    assert not trace.is_attached and not ctx.transport.obs


def test_limit_bounds_memory_and_counts_truncated():
    ctx, nodes = make_net()
    trace = MessageTrace(limit=2).attach(ctx.transport)
    for _ in range(5):
        ctx.transport.send(nodes[0], nodes[1], Message("A", 0, 1),
                           category=Category.CONFIG)
    trace.detach()
    assert len(trace) == 2
    assert trace.truncated == 3


def test_event_str_renders():
    ctx, nodes = make_net()
    trace = MessageTrace().attach(ctx.transport)
    ctx.transport.send(nodes[0], nodes[1], Message("PING", 0, 1),
                       category=Category.CONFIG)
    trace.detach()
    text = str(trace.events[0])
    assert "PING" in text and "unicast" in text
