"""Unit tests for message transport, flooding and hop accounting."""

from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net import (
    Category,
    Message,
    MessageStats,
    Node,
    Scope,
    Topology,
    Transport,
)
from repro.sim import Simulator


class Recorder:
    def __init__(self):
        self.received = []

    def on_message(self, msg):
        self.received.append(msg)


def make_net(positions, tr=150.0):
    sim = Simulator(seed=1)
    stats = MessageStats()
    topo = Topology(sim, transmission_range=tr)
    transport = Transport(sim, topo, stats)
    agents = []
    for i, (x, y) in enumerate(positions):
        node = Node(i, Stationary(Point(x, y)))
        node.agent = Recorder()
        topo.add_node(node)
        agents.append(node)
    return sim, topo, transport, stats, agents


def test_unicast_delivers_and_charges_route_length():
    sim, _, transport, stats, nodes = make_net([(0, 0), (120, 0), (240, 0)])
    msg = Message("PING", 0, 2)
    outcome = transport.send(nodes[0], nodes[2], msg, category=Category.CONFIG)
    assert outcome.ok and outcome.hops == 2
    assert stats.hops[Category.CONFIG] == 2
    sim.run()
    assert len(nodes[2].agent.received) == 1
    assert nodes[2].agent.received[0].hops == 2


def test_unicast_latency_proportional_to_hops():
    sim, _, transport, _, nodes = make_net([(0, 0), (120, 0), (240, 0)])
    transport.send(nodes[0], nodes[2], Message("PING", 0, 2),
                   category=Category.CONFIG)
    sim.run()
    assert sim.now == 2 * transport.per_hop_delay


def test_unicast_unreachable_fails_without_charge():
    sim, _, transport, stats, nodes = make_net([(0, 0), (900, 900)])
    outcome = transport.send(nodes[0], nodes[1], Message("PING", 0, 1),
                             category=Category.CONFIG)
    assert not outcome.ok
    assert stats.hops[Category.CONFIG] == 0
    sim.run()
    assert nodes[1].agent.received == []


def test_unicast_to_dead_node_fails():
    sim, topo, transport, _, nodes = make_net([(0, 0), (100, 0)])
    nodes[1].kill()
    topo.invalidate()
    outcome = transport.send(nodes[0], nodes[1], Message("PING", 0, 1),
                             category=Category.CONFIG)
    assert not outcome.ok


def test_dead_sender_cannot_send():
    _, _, transport, _, nodes = make_net([(0, 0), (100, 0)])
    nodes[0].kill()
    outcome = transport.send(nodes[0], nodes[1], Message("PING", 0, 1),
                             category=Category.CONFIG)
    assert not outcome.ok


def test_broadcast_reaches_neighbors_only():
    sim, _, transport, stats, nodes = make_net(
        [(0, 0), (100, 0), (140, 0), (400, 0)])
    outcome = transport.send(nodes[0], None, Message("HELLO", 0, None),
                             category=Category.HELLO, scope=Scope.NEIGHBORS)
    sim.run()
    assert sorted(outcome.receiver_ids()) == [1, 2]
    assert stats.hops[Category.HELLO] == 1
    assert nodes[3].agent.received == []


def test_broadcast_fanout_shares_one_frozen_copy():
    sim, _, transport, _, nodes = make_net([(0, 0), (100, 0), (140, 0)])
    transport.send(nodes[0], None, Message("HELLO", 0, None),
                   category=Category.HELLO, scope=Scope.NEIGHBORS)
    sim.run()
    m1 = nodes[1].agent.received[0]
    m2 = nodes[2].agent.received[0]
    # All 1-hop receivers share the same frozen message object.
    assert m1 is m2
    assert m1.hops == 1
    assert transport.perf.counters.get("msg_fanout_shared") == 1


def test_flood_reaches_component():
    sim, _, transport, stats, nodes = make_net(
        [(0, 0), (120, 0), (240, 0), (900, 900)])
    outcome = transport.send(nodes[0], None, Message("FLOOD", 0, None),
                             category=Category.RECLAMATION, scope=Scope.FLOOD)
    sim.run()
    assert sorted(nid for nid, _ in outcome.receivers) == [1, 2]
    assert outcome.eccentricity == 2
    # One transmission per forwarding node: source + both receivers.
    assert outcome.cost_hops == 3
    assert stats.hops[Category.RECLAMATION] == 3
    assert nodes[3].agent.received == []


def test_scoped_flood_respects_max_hops():
    sim, _, transport, _, nodes = make_net(
        [(0, 0), (120, 0), (240, 0), (360, 0)])
    outcome = transport.send(nodes[0], None, Message("FLOOD", 0, None),
                             category=Category.RECLAMATION, scope=Scope.FLOOD,
                             max_hops=2)
    sim.run()
    assert sorted(nid for nid, _ in outcome.receivers) == [1, 2]
    assert len(nodes[3].agent.received) == 0
    # Source + node 1 forward; node 2 is at the edge and does not.
    assert outcome.cost_hops == 2


def test_flood_accept_filter_limits_delivery_not_cost():
    sim, _, transport, _, nodes = make_net([(0, 0), (120, 0), (240, 0)])
    outcome = transport.send(
        nodes[0], None, Message("FLOOD", 0, None),
        category=Category.RECLAMATION, scope=Scope.FLOOD,
        accept=lambda node: node.node_id == 2,
    )
    sim.run()
    assert outcome.cost_hops == 3
    assert nodes[1].agent.received == []
    assert len(nodes[2].agent.received) == 1


def test_flood_fanout_shares_copies_per_hop_distance():
    sim, _, transport, _, nodes = make_net([(0, 0), (120, 0), (130, 0),
                                            (250, 0)])
    transport.send(nodes[0], None, Message("FLOOD", 0, None),
                   category=Category.CONFIG, scope=Scope.FLOOD)
    sim.run()
    m1 = nodes[1].agent.received[0]
    m2 = nodes[2].agent.received[0]
    m3 = nodes[3].agent.received[0]
    # Receivers at the same distance share one frozen copy; different
    # distances get distinct copies with the right hop stamp.
    assert m1 is m2
    assert m1 is not m3
    assert m1.hops == 1 and m3.hops == 2
    assert transport.perf.counters.get("msg_fanout_shared") == 1


def test_message_reply_addressing():
    msg = Message("REQ", src=1, dst=2, payload={"x": 1})
    reply = msg.reply("RSP", {"y": 2})
    assert reply.src == 2 and reply.dst == 1
    assert reply.mtype == "RSP"
