"""Unit tests for message accounting."""

import pytest

from repro.net import Category, MessageStats


def test_charge_accumulates():
    stats = MessageStats()
    stats.charge(Category.CONFIG, 3)
    stats.charge(Category.CONFIG, 2)
    assert stats.hops[Category.CONFIG] == 5
    assert stats.messages[Category.CONFIG] == 2


def test_charge_multiple_messages():
    stats = MessageStats()
    stats.charge(Category.MAINTENANCE, 10, messages=10)
    assert stats.messages[Category.MAINTENANCE] == 10


def test_negative_hops_rejected():
    with pytest.raises(ValueError):
        MessageStats().charge(Category.CONFIG, -1)


def test_total_hops_excludes():
    stats = MessageStats()
    stats.charge(Category.CONFIG, 5)
    stats.charge(Category.HELLO, 100)
    assert stats.total_hops(exclude=[Category.HELLO]) == 5
    assert stats.total_hops() == 105


def test_total_hops_include_list():
    stats = MessageStats()
    stats.charge(Category.CONFIG, 5)
    stats.charge(Category.DEPARTURE, 7)
    assert stats.total_hops(include=[Category.DEPARTURE]) == 7


def test_snapshot_covers_all_categories():
    stats = MessageStats()
    stats.charge(Category.MOVEMENT, 4)
    snap = stats.snapshot()
    assert snap["movement"] == (4, 1)
    assert set(snap) == {c.value for c in Category}
    assert snap["config"] == (0, 0)
