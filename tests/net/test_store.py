"""NodeStore unit behavior: slots, eviction, compaction, static skip."""

import pytest

from repro.geometry import Point
from repro.geometry.region import Region
from repro.mobility.base import Stationary
from repro.mobility.waypoint import RandomWaypoint
from repro.net.node import Node
from repro.net.store import COMPACT_MIN_SLOTS, NodeStore

import random


def _node(i, x=0.0, y=0.0):
    return Node(i, Stationary(Point(x, y)))


def test_slots_are_insertion_ordered_and_stable():
    store = NodeStore()
    for i in (5, 2, 9):
        store.add(_node(i))
    assert store.ids == [5, 2, 9]
    assert [store.slot_of[i] for i in (5, 2, 9)] == [0, 1, 2]
    assert [n.node_id for n in store.alive_nodes()] == [5, 2, 9]
    assert list(store.iter_alive_slots()) == [0, 1, 2]


def test_duplicate_id_rejected():
    store = NodeStore()
    store.add(_node(1))
    with pytest.raises(ValueError, match="duplicate node id 1"):
        store.add(_node(1))


def test_add_many_equivalent_to_add_loop():
    batch = NodeStore()
    loop = NodeStore()
    nodes = [_node(i, x=float(i)) for i in (7, 3, 11, 5)]
    assert batch.add_many(_node(n.node_id, x=float(n.node_id))
                          for n in nodes) == 4
    for node in nodes:
        loop.add(node)
    assert batch.ids == loop.ids
    assert batch.slot_of == loop.slot_of
    batch.refresh_positions(0.0)
    loop.refresh_positions(0.0)
    assert list(batch.xs) == list(loop.xs)


def test_add_many_empty_batch():
    store = NodeStore()
    assert store.add_many([]) == 0
    assert store.ids == []


def test_add_many_duplicate_rejected_before_any_state_change():
    store = NodeStore()
    store.add(_node(1))
    with pytest.raises(ValueError, match="duplicate node id"):
        store.add_many([_node(2), _node(1)])  # clashes with resident
    with pytest.raises(ValueError, match="duplicate node id"):
        store.add_many([_node(3), _node(3)])  # clashes within batch
    # A failed batch leaves the store exactly as it was.
    assert store.ids == [1]
    assert store.slot_of == {1: 0}
    assert len(store.nodes) == len(store.xs) == len(store.ys) == 1


def test_evict_tombstones_without_renumbering():
    store = NodeStore()
    for i in range(5):
        store.add(_node(i))
    assert store.evict(2)
    assert not store.evict(2)  # already gone
    assert 2 not in store
    assert store.get(2) is None
    assert len(store) == 4
    assert store.capacity == 5          # arrays keep their length
    assert store.tombstones == 1
    assert store.layout_version == 0    # no renumbering yet
    # Survivors keep their slots and order.
    assert [n.node_id for n in store.alive_nodes()] == [0, 1, 3, 4]
    assert store.slot_of[3] == 3


def test_compaction_preserves_order_and_bumps_layout():
    store = NodeStore()
    n = COMPACT_MIN_SLOTS * 2
    for i in range(n):
        store.add(_node(i, x=float(i)))
    store.refresh_positions(0.0)
    # Evict just past the half threshold to trigger auto-compaction.
    for i in range(0, n, 2):
        store.evict(i)
    store.evict(1)
    assert store.layout_version == 1
    assert store.tombstones == 0
    survivors = [i for i in range(n) if i % 2 == 1 and i != 1]
    assert store.ids == survivors
    assert store.capacity == len(survivors)
    # Slot order still equals insertion order, positions rode along.
    for slot, nid in enumerate(store.ids):
        assert store.slot_of[nid] == slot
        assert store.xs[slot] == float(nid)


def test_refresh_skips_unchanged_stationary_nodes():
    store = NodeStore()
    for i in range(10):
        store.add(_node(i, x=float(i)))
    alive, moved = store.refresh_positions(0.0)
    assert alive == list(range(10))
    assert moved == []  # first refresh populates, nothing "moved"
    assert store.last_refresh_recomputed == 10
    alive, moved = store.refresh_positions(5.0)
    assert alive == list(range(10))
    assert moved == []
    assert store.last_refresh_recomputed == 0  # all static-skipped


def test_model_swap_defeats_static_skip():
    """Node.pin()-style mobility swaps must be recomputed, not skipped."""
    store = NodeStore()
    node = _node(0, x=1.0)
    store.add(node)
    store.refresh_positions(0.0)
    assert store.xs[0] == 1.0
    node.mobility = Stationary(Point(42.0, 0.0))  # new object, new spot
    alive, moved = store.refresh_positions(1.0)
    assert store.last_refresh_recomputed == 1
    assert moved == [(0, 1.0, 0.0)]  # old coordinates reported
    assert store.xs[0] == 42.0


def test_moving_node_reports_old_coordinates():
    region = Region(1000, 1000)
    store = NodeStore()
    walker = Node(0, RandomWaypoint(region, Point(100.0, 100.0), 20.0,
                                    random.Random(3)))
    store.add(walker)
    store.refresh_positions(0.0)
    x0, y0 = store.xs[0], store.ys[0]
    _, moved = store.refresh_positions(2.0)
    assert store.last_refresh_recomputed == 1
    assert moved == [(0, x0, y0)]
    assert (store.xs[0], store.ys[0]) != (x0, y0)


def test_dead_nodes_are_excluded_but_keep_slots():
    store = NodeStore()
    for i in range(4):
        store.add(_node(i))
    store.get(1).alive = False
    alive, _ = store.refresh_positions(0.0)
    assert alive == [0, 2, 3]
    assert [n.node_id for n in store.alive_nodes()] == [0, 2, 3]
    assert len(store) == 4  # still present, merely down
    store.get(1).alive = True
    alive, _ = store.refresh_positions(1.0)
    assert alive == [0, 1, 2, 3]
