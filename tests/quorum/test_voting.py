"""Unit tests for read/write thresholds and vote collection."""

import pytest

from repro.addrspace.records import AddressRecord, AddressStatus
from repro.quorum import (
    DynamicLinearVoting,
    MajorityQuorumSystem,
    ReadWriteThresholds,
    Vote,
    VoteCollector,
)


def record(status=AddressStatus.FREE, ts=0, holder=None):
    return AddressRecord(status, ts, holder)


class TestReadWriteThresholds:
    def test_paper_conditions(self):
        """w > v/2 and r + w > v (Section II-C)."""
        assert ReadWriteThresholds(read=3, write=3, total=5).valid()
        assert not ReadWriteThresholds(read=2, write=2, total=5).valid()
        assert not ReadWriteThresholds(read=1, write=3, total=5).valid()

    def test_majority_construction_is_valid(self):
        for total in range(1, 12):
            thresholds = ReadWriteThresholds.majority(total)
            assert thresholds.valid(), total

    def test_write_must_exceed_half(self):
        assert not ReadWriteThresholds(read=4, write=2, total=4).valid()
        assert ReadWriteThresholds(read=2, write=3, total=4).valid()


class TestVoteCollector:
    def test_no_decision_without_quorum(self):
        collector = VoteCollector(5, {1, 2, 3}, MajorityQuorumSystem())
        collector.add_vote(Vote(1, 5, record()))
        assert collector.decide() is None

    def test_free_decision_on_quorum(self):
        collector = VoteCollector(5, {1, 2, 3}, MajorityQuorumSystem())
        collector.add_vote(Vote(1, 5, record()))
        collector.add_vote(Vote(2, 5, record()))
        assert collector.decide() is True

    def test_latest_timestamp_wins(self):
        """A single fresh ASSIGNED record outvotes stale FREE records."""
        collector = VoteCollector(5, {1, 2, 3}, MajorityQuorumSystem())
        collector.add_vote(Vote(1, 5, record(AddressStatus.FREE, ts=1)))
        collector.add_vote(Vote(2, 5, record(AddressStatus.ASSIGNED, ts=7)))
        collector.add_vote(Vote(3, 5, record(AddressStatus.FREE, ts=2)))
        assert collector.decide() is False
        assert collector.latest_record().timestamp == 7

    def test_votes_for_wrong_address_rejected(self):
        collector = VoteCollector(5, {1}, MajorityQuorumSystem())
        with pytest.raises(ValueError):
            collector.add_vote(Vote(1, 6, record()))

    def test_votes_outside_universe_ignored(self):
        collector = VoteCollector(5, {1, 2, 3}, MajorityQuorumSystem())
        collector.add_vote(Vote(9, 5, record()))
        assert collector.responders == set()

    def test_duplicate_votes_counted_once(self):
        collector = VoteCollector(5, {1, 2, 3}, MajorityQuorumSystem())
        collector.add_vote(Vote(1, 5, record(ts=1)))
        collector.add_vote(Vote(1, 5, record(ts=2)))
        assert collector.responders == {1}
        assert collector.decide() is None

    def test_linear_voting_halves_requirement(self):
        system = DynamicLinearVoting(distinguished=1)
        collector = VoteCollector(5, {1, 2, 3, 4}, system)
        collector.add_vote(Vote(1, 5, record()))
        assert collector.decide() is None  # 1 of 4
        collector.add_vote(Vote(2, 5, record()))
        assert collector.decide() is True  # half incl. distinguished

    def test_latest_record_none_without_votes(self):
        collector = VoteCollector(5, {1}, MajorityQuorumSystem())
        assert collector.latest_record() is None
