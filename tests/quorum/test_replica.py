"""Unit tests for replica stores (QuorumSpace)."""

from repro.addrspace import Block
from repro.addrspace.records import AddressRecord, AddressStatus
from repro.quorum import Replica, ReplicaStore


def make_replica(owner=1, blocks=(Block(0, 8),)):
    return Replica(owner, list(blocks))


def test_replica_covers_its_blocks():
    replica = make_replica(blocks=[Block(0, 4), Block(8, 4)])
    assert replica.covers(0) and replica.covers(11)
    assert not replica.covers(4)


def test_replica_size():
    assert make_replica(blocks=[Block(0, 4), Block(8, 8)]).size() == 12


def test_free_addresses_respect_ledger():
    replica = make_replica(blocks=[Block(0, 4)])
    replica.ledger.mark_assigned(1, holder=9)
    assert list(replica.free_addresses()) == [0, 2, 3]


def test_copy_is_deep_for_ledger():
    replica = make_replica()
    replica.ledger.mark_assigned(0, holder=1)
    clone = replica.copy()
    replica.ledger.mark_free(0)
    assert clone.ledger.get(0).status is AddressStatus.ASSIGNED


def test_store_install_and_get():
    store = ReplicaStore()
    store.install(make_replica(owner=3))
    assert 3 in store
    assert store.get(3).owner == 3
    assert store.owners() == [3]


def test_install_refresh_merges_ledgers():
    store = ReplicaStore()
    first = make_replica(owner=3)
    first.ledger.mark_assigned(0, holder=5)  # ts 1
    store.install(first)
    refresh = make_replica(owner=3, blocks=[Block(0, 4)])
    # Stale record must not roll back the stored one.
    refresh.ledger.apply(0, AddressRecord(AddressStatus.FREE, 0, None))
    store.install(refresh)
    stored = store.get(3)
    assert stored.blocks == [Block(0, 4)]
    assert stored.ledger.get(0).status is AddressStatus.ASSIGNED


def test_drop():
    store = ReplicaStore()
    store.install(make_replica(owner=3))
    dropped = store.drop(3)
    assert dropped is not None and dropped.owner == 3
    assert store.drop(3) is None
    assert 3 not in store


def test_find_covering():
    store = ReplicaStore()
    store.install(make_replica(owner=1, blocks=[Block(0, 4)]))
    store.install(make_replica(owner=2, blocks=[Block(8, 4)]))
    assert store.find_covering(2).owner == 1
    assert store.find_covering(9).owner == 2
    assert store.find_covering(5) is None


def test_total_size():
    store = ReplicaStore()
    store.install(make_replica(owner=1, blocks=[Block(0, 8)]))
    store.install(make_replica(owner=2, blocks=[Block(16, 16)]))
    assert store.total_size() == 24
    assert len(store) == 2


def test_install_copies_source():
    store = ReplicaStore()
    source = make_replica(owner=4)
    store.install(source)
    source.ledger.mark_assigned(0, holder=1)
    assert store.get(4).ledger.peek(0) is None
