"""Unit and property tests for dynamic linear voting (Section II-D)."""

import itertools

from hypothesis import given, strategies as st

from repro.quorum import DynamicLinearVoting


def test_majority_still_qualifies():
    system = DynamicLinearVoting(distinguished=1)
    assert system.is_quorum({1, 2, 3}, {1, 2, 3, 4})


def test_half_with_distinguished_qualifies():
    system = DynamicLinearVoting(distinguished=1)
    assert system.is_quorum({1, 2}, {1, 2, 3, 4})


def test_half_without_distinguished_fails():
    system = DynamicLinearVoting(distinguished=1)
    assert not system.is_quorum({3, 4}, {1, 2, 3, 4})


def test_odd_universe_ignores_distinguished_shortcut():
    system = DynamicLinearVoting(distinguished=1)
    assert not system.is_quorum({1}, {1, 2, 3})
    assert system.is_quorum({1, 2}, {1, 2, 3})


def test_no_distinguished_behaves_like_majority():
    system = DynamicLinearVoting(distinguished=None)
    assert not system.is_quorum({1, 2}, {1, 2, 3, 4})


def test_paper_example_adjusted_quorums():
    """Section II-D: with head 1 distinguished over {1..6}, {1,2,3} is a
    quorum (half containing the distinguished node)."""
    universe = {1, 2, 3, 4, 5, 6}
    system = DynamicLinearVoting(distinguished=1)
    assert system.is_quorum({1, 2, 3}, universe)
    assert system.is_quorum({1, 4, 6}, universe)
    assert not system.is_quorum({2, 3, 4}, universe)  # half, no dist.


def test_required_with():
    system = DynamicLinearVoting(distinguished=1)
    assert system.required_with(4, has_distinguished=True) == 2
    assert system.required_with(4, has_distinguished=False) == 3
    assert system.required_with(5, has_distinguished=True) == 3


@given(st.sets(st.integers(0, 12), min_size=2, max_size=8))
def test_linear_quorums_pairwise_intersect(universe):
    """Half-sets containing the distinguished node plus all majorities
    still form a quorum system (pairwise intersection)."""
    distinguished = min(universe)
    system = DynamicLinearVoting(distinguished=distinguished)
    members = sorted(universe)
    quorums = []
    for r in range(1, len(members) + 1):
        for combo in itertools.combinations(members, r):
            if system.is_quorum(set(combo), universe):
                quorums.append(set(combo))
    for a, b in itertools.combinations(quorums, 2):
        assert a & b, f"disjoint quorums {a}, {b} (dist={distinguished})"
