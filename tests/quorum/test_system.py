"""Unit and property tests for quorum systems (Definition 1)."""

import itertools

from hypothesis import given, strategies as st

from repro.quorum import MajorityQuorumSystem, is_quorum_system


def test_definition_one_accepts_intersecting_sets():
    universe = {1, 2, 3}
    assert is_quorum_system([{1, 2}, {2, 3}, {1, 3}], universe)


def test_definition_one_rejects_disjoint_sets():
    assert not is_quorum_system([{1}, {2}], {1, 2})


def test_definition_one_rejects_sets_outside_universe():
    assert not is_quorum_system([{1, 4}], {1, 2, 3})


def test_definition_one_rejects_empty_family_and_empty_quorum():
    assert not is_quorum_system([], {1, 2})
    assert not is_quorum_system([set()], {1, 2})


def test_paper_example_quorums():
    """Section II-C's example: {1,2,3,4}, {1,2,3,5}, {2,3,4,5} over six
    cluster heads."""
    universe = {1, 2, 3, 4, 5, 6}
    quorums = [{1, 2, 3, 4}, {1, 2, 3, 5}, {2, 3, 4, 5}]
    assert is_quorum_system(quorums, universe)


def test_majority_threshold():
    system = MajorityQuorumSystem()
    assert system.quorum_threshold(1) == 1
    assert system.quorum_threshold(2) == 2
    assert system.quorum_threshold(3) == 2
    assert system.quorum_threshold(4) == 3
    assert system.quorum_threshold(5) == 3


def test_majority_half_is_not_quorum_for_even_universe():
    """Section II-D: exactly half does not constitute a quorum."""
    system = MajorityQuorumSystem()
    assert not system.is_quorum({1, 2}, {1, 2, 3, 4})
    assert system.is_quorum({1, 2, 3}, {1, 2, 3, 4})


def test_responders_outside_universe_do_not_count():
    system = MajorityQuorumSystem()
    assert not system.is_quorum({7, 8, 9}, {1, 2, 3})
    assert system.is_quorum({1, 2, 9}, {1, 2, 3})


def test_minimal_quorums_form_a_quorum_system():
    system = MajorityQuorumSystem()
    universe = {1, 2, 3, 4, 5}
    quorums = system.minimal_quorums(universe)
    assert all(len(q) == 3 for q in quorums)
    assert is_quorum_system(quorums, universe)


@given(st.sets(st.integers(0, 30), min_size=1, max_size=8))
def test_any_two_majorities_intersect(universe):
    """The defining property: two majority quorums always share a node."""
    system = MajorityQuorumSystem()
    threshold = system.quorum_threshold(len(universe))
    members = sorted(universe)
    quorums = [set(c) for c in itertools.combinations(members, threshold)]
    for a, b in itertools.combinations(quorums, 2):
        assert a & b, f"disjoint majorities {a} and {b} in {universe}"


@given(
    st.sets(st.integers(0, 20), min_size=1, max_size=10),
    st.sets(st.integers(0, 20), max_size=10),
)
def test_majority_is_monotone(universe, responders):
    """Adding responders never destroys a quorum."""
    system = MajorityQuorumSystem()
    if system.is_quorum(responders, universe):
        bigger = set(responders) | {max(universe)}
        assert system.is_quorum(bigger, universe)
