"""Smoke tests for the repro bench harness (kept fast: tiny matrix)."""

import json

import pytest

from repro.net.topology import Topology
from repro.perf import bench


def test_engine_microbench_returns_positive_timings():
    row = bench._bench_engine(Topology, 30, rebuild_reps=2, query_reps=1)
    assert row["rebuild_s"] > 0
    assert row["query_s"] > 0


def test_engine_microbench_oracle_api_compatible():
    pytest.importorskip("networkx")
    from repro.net.oracle import OracleTopology

    row = bench._bench_engine(OracleTopology, 30, rebuild_reps=2,
                              query_reps=1)
    assert row["rebuild_s"] > 0


def test_cli_writes_schema_and_checks_baseline(tmp_path, monkeypatch):
    # Shrink the matrix so the CLI path runs in ~a second.
    monkeypatch.setattr(bench, "ENGINE_SIZES_QUICK", (20,))

    def small(quick):
        from repro.experiments.scenario import Scenario
        return [("tiny", Scenario(num_nodes=10, seed=1, settle_time=2.0),
                 "quorum")]

    monkeypatch.setattr(bench, "_scenario_matrix", small)
    out = tmp_path / "BENCH_topology.json"
    rc = bench.main(["--quick", "--skip-legacy", "--out", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == bench.SCHEMA_VERSION
    assert payload["quick"] is True
    assert "20" in payload["engine"]
    assert payload["scenarios"]["tiny"]["counters"]["bfs_calls"] > 0

    # Same matrix as its own baseline: the gate must pass ...
    rc = bench.main(["--quick", "--skip-legacy", "--out", str(out),
                     "--check", "--baseline", str(out)])
    assert rc == 0
    # ... and fail once the baseline counters are tightened below reality.
    squeezed = dict(payload)
    squeezed["scenarios"] = {
        "tiny": {"wall_s": 0.0,
                 "counters": {"bfs_calls": 1}}}
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(squeezed))
    rc = bench.main(["--quick", "--skip-legacy", "--out", str(out),
                     "--check", "--baseline", str(baseline_path)])
    assert rc == 1


def test_missing_baseline_is_an_error(tmp_path):
    import repro.perf.bench as bench_mod
    rc_args = ["--quick", "--skip-legacy",
               "--out", str(tmp_path / "b.json"),
               "--check", "--baseline", str(tmp_path / "missing.json")]
    # Shrink via module attributes to keep this fast.
    sizes = bench_mod.ENGINE_SIZES_QUICK
    matrix = bench_mod._scenario_matrix
    try:
        bench_mod.ENGINE_SIZES_QUICK = (15,)
        bench_mod._scenario_matrix = lambda quick: []
        assert bench_mod.main(rc_args) == 2
    finally:
        bench_mod.ENGINE_SIZES_QUICK = sizes
        bench_mod._scenario_matrix = matrix
