"""Unit tests for the repro.perf instrumentation layer."""

from repro.perf import PerfRecorder, TimerStat


def test_counters_increment_and_snapshot_sorted():
    perf = PerfRecorder()
    perf.incr("zeta")
    perf.incr("alpha", 5)
    perf.incr("zeta", 2)
    assert perf.get("zeta") == 3
    assert perf.get("alpha") == 5
    assert perf.get("never_touched") == 0
    assert list(perf.counters_snapshot()) == ["alpha", "zeta"]


def test_timer_accumulates_with_fake_clock():
    ticks = iter(range(100))
    perf = PerfRecorder(clock=lambda: float(next(ticks)))
    with perf.timer("work"):
        pass  # 0 -> 1
    with perf.timer("work"):
        pass  # 2 -> 3
    snap = perf.timings_snapshot()
    assert snap["work"]["calls"] == 2
    assert snap["work"]["total_s"] == 2.0


def test_nested_same_name_timer_counts_outermost_span_once():
    ticks = iter(range(100))
    perf = PerfRecorder(clock=lambda: float(next(ticks)))
    with perf.timer("bfs"):         # clock 0
        with perf.timer("bfs"):     # inner frame: no clock reads
            pass
    # Outer span is 0 -> 1; the re-entrant frame must not double-count.
    snap = perf.timings_snapshot()
    assert snap["bfs"]["calls"] == 2
    assert snap["bfs"]["total_s"] == 1.0


def test_nested_distinct_timers_and_active_stack():
    perf = PerfRecorder()
    with perf.timer("outer"):
        with perf.timer("inner"):
            assert perf.active_timers() == ("outer", "inner")
    assert perf.active_timers() == ()
    assert set(perf.timings_snapshot()) == {"inner", "outer"}


def test_timer_survives_exceptions():
    perf = PerfRecorder()
    try:
        with perf.timer("risky"):
            raise ValueError("boom")
    except ValueError:
        pass
    assert perf.active_timers() == ()
    assert perf.timings_snapshot()["risky"]["calls"] == 1


def test_merge_folds_counters_and_timings():
    a, b = PerfRecorder(), PerfRecorder()
    a.incr("bfs_calls", 2)
    b.incr("bfs_calls", 3)
    b.incr("graph_rebuilds")
    with b.timer("topology.rebuild"):
        pass
    a.merge(b)
    assert a.get("bfs_calls") == 5
    assert a.get("graph_rebuilds") == 1
    assert a.timings_snapshot()["topology.rebuild"]["calls"] == 1


def test_timerstat_as_dict():
    stat = TimerStat()
    stat.calls = 3
    stat.total_s = 0.25
    assert stat.as_dict() == {"calls": 3, "total_s": 0.25}
