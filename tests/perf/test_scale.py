"""The scale bench: schema, determinism, and the regression gate.

The real matrix (1k/10k/50k) runs in CI and locally via ``repro bench
--scale``; tests shrink the size list so the whole file stays fast.
"""

import json

import pytest

from repro.perf import scale


@pytest.fixture
def tiny_matrix(monkeypatch):
    monkeypatch.setattr(scale, "SCALE_SIZES_FULL", (120, 250))
    monkeypatch.setattr(scale, "SCALE_SIZES_QUICK", (120,))
    monkeypatch.setattr(scale, "ROUNDS", 2)
    monkeypatch.setattr(scale, "CHURN_TIMERS", 200)
    # Keep the churned slice under the delta-rebuild dirty threshold
    # (25 %) at the shrunken population sizes.
    monkeypatch.setattr(scale, "CHURN_NODES", 16)
    # Protocol phase, shrunk the same way: one small population, short
    # phases, and a moat scaled to the smaller area — still wider than
    # the transmission range (so the cut genuinely partitions) and
    # still under the dirty threshold (so detection rides the deltas).
    monkeypatch.setattr(scale, "PROTOCOL_SIZES_FULL", (200,))
    monkeypatch.setattr(scale, "PROTOCOL_SIZES_QUICK", (200,))
    monkeypatch.setattr(scale, "SETTLE_S", 6.0)
    monkeypatch.setattr(scale, "STORM_ENTRANTS", 8)
    monkeypatch.setattr(scale, "STORM_DRAIN_S", 5.0)
    monkeypatch.setattr(scale, "RECOVER_S", 8.0)
    monkeypatch.setattr(scale, "HEAL_S", 4.0)
    monkeypatch.setattr(scale, "MOAT_INNER_M", 150.0)
    monkeypatch.setattr(scale, "MOAT_OUTER_M", 320.0)


def test_payload_schema_and_structure(tiny_matrix):
    payload = scale.run_scale()
    assert payload["schema"] == scale.SCALE_SCHEMA_VERSION
    assert set(payload["sizes"]) == {"120", "250"}
    for cell in payload["sizes"].values():
        assert set(cell) >= {"n", "area_side_m", "rounds", "wall",
                             "graph", "heap", "churn", "counters"}
        assert cell["wall"]["build_s"] > 0
        assert cell["graph"]["edges"] > 0
        assert cell["graph"]["shards"] >= 1
        assert cell["counters"]["graph_rebuilds"] >= 1
        churn = cell["churn"]
        assert churn["rounds"] == scale.CHURN_FAULT_ROUNDS
        assert churn["nodes_per_round"] >= 1
        assert churn["counters_delta"]["graph_node_invalidations"] > 0
        # Constant density: larger n means a larger area.
    assert (payload["sizes"]["250"]["area_side_m"]
            > payload["sizes"]["120"]["area_side_m"])
    assert set(payload["protocol"]) == {"200"}
    proto = payload["protocol"]["200"]
    assert set(proto) >= {"n", "heads", "spilled", "bootstrap", "phases",
                          "final", "heap", "counters"}
    assert set(proto["phases"]) == {"storm", "detect", "recover", "heal"}
    assert proto["bootstrap"]["wall_s"] > 0
    assert proto["heads"] >= 1


def test_deterministic_sections_are_reproducible(tiny_matrix):
    a = scale.run_scale()
    b = scale.run_scale()
    for size in a["sizes"]:
        for key in ("counters", "graph", "heap"):
            assert a["sizes"][size][key] == b["sizes"][size][key]
    for size in a["protocol"]:
        pa, pb = a["protocol"][size], b["protocol"][size]
        for key in ("counters", "final", "heads", "spilled", "heap"):
            assert pa[key] == pb[key]
        for phase in pa["phases"]:
            assert (pa["phases"][phase]["counters_delta"]
                    == pb["phases"][phase]["counters_delta"])


def test_quick_mode_is_a_comparable_prefix_of_full(tiny_matrix):
    """The CI smoke (quick) must gate cleanly against a full baseline."""
    full = scale.run_scale()
    quick = scale.run_scale(quick=True)
    assert list(quick["sizes"]) == ["120"]
    assert quick["sizes"]["120"]["rounds"] == full["sizes"]["120"]["rounds"]
    assert scale.check_scale_regression(quick, full) == []


def test_gate_flags_counter_regressions_and_structure_drift(tiny_matrix):
    baseline = scale.run_scale(quick=True)
    run = json.loads(json.dumps(baseline))  # deep copy
    assert scale.check_scale_regression(run, baseline) == []
    cell = run["sizes"]["120"]
    cell["counters"]["bfs_calls"] = int(
        baseline["sizes"]["120"]["counters"]["bfs_calls"] * 2)
    cell["graph"]["edges"] += 1
    failures = scale.check_scale_regression(run, baseline)
    assert any("bfs_calls regressed" in f for f in failures)
    assert any("graph edges changed" in f for f in failures)
    # Improvements (counters below baseline) never fail.
    cell["counters"]["bfs_calls"] = 1
    cell["graph"]["edges"] -= 1
    assert scale.check_scale_regression(run, baseline) == []


def test_gate_refuses_incomparable_round_counts(tiny_matrix):
    baseline = scale.run_scale(quick=True)
    run = json.loads(json.dumps(baseline))
    run["sizes"]["120"]["rounds"] = baseline["sizes"]["120"]["rounds"] + 1
    failures = scale.check_scale_regression(run, baseline)
    assert any("rounds differ" in f for f in failures)


def test_cli_writes_payload_and_checks(tiny_matrix, tmp_path):
    out = tmp_path / "BENCH_scale.json"
    assert scale.main(["--quick", "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["quick"] is True
    # A second run gates green against the first.
    out2 = tmp_path / "BENCH_scale_2.json"
    rc = scale.main(["--quick", "--out", str(out2),
                     "--check", "--baseline", str(out)])
    assert rc == 0
    assert scale.main(["--check", "--quick", "--out", str(out2),
                       "--baseline", str(tmp_path / "missing.json")]) == 2


def test_mobile_fraction_keeps_delta_path_active(tiny_matrix):
    """The workload must exercise the regime it claims to measure:
    delta rebuilds with a small dirty set, static skip doing the bulk."""
    payload = scale.run_scale(quick=True)
    counters = payload["sizes"]["120"]["counters"]
    assert counters["graph_delta_rebuilds"] >= 1
    assert counters["graph_full_rebuilds"] >= 1  # the initial build
    # Static skip: recomputed positions per refresh ~= mobile count,
    # far below n * refreshes.
    n = 120
    refreshes = counters["graph_rebuilds"]
    assert counters["graph_positions_recomputed"] < n * refreshes / 2
    # Shard dirty tracking: delta refreshes touch fewer shards than a
    # full rebuild's total (full rebuilds count every occupied shard).
    assert counters["graph_shards_touched"] > 0


def test_fault_churn_rides_the_node_scoped_delta_path(tiny_matrix):
    """Crash/restart churn must be absorbed by delta rebuilds scoped to
    the churned slice — the invalidate_nodes contract."""
    payload = scale.run_scale(quick=True)
    cell = payload["sizes"]["120"]
    churn = cell["churn"]
    delta = churn["counters_delta"]
    # Two invalidation batches (crash, restart) per churn round, each
    # counting every churned node...
    expected = 2 * churn["rounds"] * churn["nodes_per_round"]
    assert delta["graph_node_invalidations"] == expected
    # ...each absorbed by a delta rebuild, never a full one.
    assert delta["graph_delta_rebuilds"] == 2 * churn["rounds"]
    assert delta.get("graph_full_rebuilds", 0) == 0
    # Dirty work is sized by the churned slice, not the population.
    assert delta["graph_delta_dirty_nodes"] == expected


def test_gate_flags_churn_delta_regressions(tiny_matrix):
    baseline = scale.run_scale(quick=True)
    run = json.loads(json.dumps(baseline))
    churn = run["sizes"]["120"]["churn"]
    churn["counters_delta"]["graph_delta_dirty_nodes"] *= 2
    failures = scale.check_scale_regression(run, baseline)
    assert any("churn graph_delta_dirty_nodes regressed" in f
               for f in failures)
    # Incomparable churn shapes refuse instead of comparing.
    churn["rounds"] += 1
    failures = scale.check_scale_regression(run, baseline)
    assert any("churn rounds differ" in f for f in failures)


def test_protocol_phase_rides_the_labels(tiny_matrix):
    """The partition/heal cycle must satisfy the run invariants the CI
    gate enforces: a detect window with zero unbounded BFS walks and
    zero full relabels, and a healed network with unique addresses."""
    payload = scale.run_scale(quick=True)
    assert scale._check_run_invariants(payload) == []
    proto = payload["protocol"]["200"]
    detect = proto["phases"]["detect"]
    assert detect["counters_delta"].get("bfs_unbounded", 0) == 0
    assert detect["counters_delta"].get("conn_full_relabels", 0) == 0
    # The cut genuinely partitioned the population...
    assert detect["moat_nodes"] > 0
    assert 0 < detect["corner_component"] <= detect["corner_nodes"]
    # ...and the detect-window relabel work was sized by the cut-off
    # corner, not the population.
    relabeled = detect["counters_delta"].get("conn_slots_relabeled", 0)
    assert relabeled <= detect["moat_nodes"] + detect["corner_nodes"]
    storm = proto["phases"]["storm"]
    assert storm["configured"] == storm["entrants"]
    assert proto["final"]["addresses_unique"] is True


def test_gate_flags_protocol_invariant_violations(tiny_matrix):
    baseline = scale.run_scale(quick=True)
    run = json.loads(json.dumps(baseline))
    detect = run["protocol"]["200"]["phases"]["detect"]
    detect["counters_delta"]["bfs_unbounded"] = 7
    failures = scale.check_scale_regression(run, baseline)
    assert any("detect window issued 7 bfs_unbounded" in f
               for f in failures)
    detect["counters_delta"].pop("bfs_unbounded")
    run["protocol"]["200"]["final"]["addresses_unique"] = False
    failures = scale.check_scale_regression(run, baseline)
    assert any("duplicate addresses" in f for f in failures)


def test_gate_compares_protocol_sections(tiny_matrix):
    baseline = scale.run_scale(quick=True)
    run = json.loads(json.dumps(baseline))
    proto = run["protocol"]["200"]
    proto["heads"] += 1
    storm = proto["phases"]["storm"]["counters_delta"]
    storm["send_unicast"] = int(storm.get("send_unicast", 10) * 3)
    failures = scale.check_scale_regression(run, baseline)
    assert any("heads changed" in f for f in failures)
    assert any("storm send_unicast regressed" in f for f in failures)


def test_committed_baseline_matches_schema():
    """BENCH_scale.json at the repo root stays loadable and current."""
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "BENCH_scale.json"
    assert path.exists(), "repo-root BENCH_scale.json baseline missing"
    payload = json.loads(path.read_text())
    assert payload["schema"] == scale.SCALE_SCHEMA_VERSION
    assert set(payload["sizes"]) == {"1000", "10000", "50000"}
    for cell in payload["sizes"].values():
        assert cell["graph"]["edges"] > 0
        assert cell["counters"]
    # The headline scaling fact: a localized restart storm touches a
    # constant handful of shards per rebuild (the cluster's footprint),
    # while the shard population keeps growing with n.
    big = payload["sizes"]["50000"]
    delta = big["churn"]["counters_delta"]
    touched_per_rebuild = (delta["graph_shards_touched"]
                           / delta["graph_delta_rebuilds"])
    assert touched_per_rebuild * 10 <= big["graph"]["shards"]
    # Schema v3: the full-protocol cells, and their headline fact —
    # detect-window relabel cost tracks the cut-off component (a
    # couple hundred slots), not the 10x larger population.
    assert set(payload["protocol"]) == {"1000", "10000"}
    assert scale._check_run_invariants(payload) == []
    for cell in payload["protocol"].values():
        storm = cell["phases"]["storm"]
        assert storm["configured"] == storm["entrants"]
        assert cell["final"]["networks"] == 1
    small = payload["protocol"]["1000"]["phases"]["detect"]["counters_delta"]
    large = payload["protocol"]["10000"]["phases"]["detect"]["counters_delta"]
    assert large["conn_slots_relabeled"] <= 2 * max(
        small["conn_slots_relabeled"], 1)
