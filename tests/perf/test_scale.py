"""The scale bench: schema, determinism, and the regression gate.

The real matrix (1k/10k) runs in CI and locally via ``repro bench
--scale``; tests shrink the size list so the whole file stays fast.
"""

import json

import pytest

from repro.perf import scale


@pytest.fixture
def tiny_matrix(monkeypatch):
    monkeypatch.setattr(scale, "SCALE_SIZES_FULL", (120, 250))
    monkeypatch.setattr(scale, "SCALE_SIZES_QUICK", (120,))
    monkeypatch.setattr(scale, "ROUNDS", 2)
    monkeypatch.setattr(scale, "CHURN_TIMERS", 200)


def test_payload_schema_and_structure(tiny_matrix):
    payload = scale.run_scale()
    assert payload["schema"] == scale.SCALE_SCHEMA_VERSION
    assert set(payload["sizes"]) == {"120", "250"}
    for cell in payload["sizes"].values():
        assert set(cell) >= {"n", "area_side_m", "rounds", "wall",
                             "graph", "heap", "counters"}
        assert cell["wall"]["build_s"] > 0
        assert cell["graph"]["edges"] > 0
        assert cell["graph"]["shards"] >= 1
        assert cell["counters"]["graph_rebuilds"] >= 1
        # Constant density: larger n means a larger area.
    assert (payload["sizes"]["250"]["area_side_m"]
            > payload["sizes"]["120"]["area_side_m"])


def test_deterministic_sections_are_reproducible(tiny_matrix):
    a = scale.run_scale()
    b = scale.run_scale()
    for size in a["sizes"]:
        for key in ("counters", "graph", "heap"):
            assert a["sizes"][size][key] == b["sizes"][size][key]


def test_quick_mode_is_a_comparable_prefix_of_full(tiny_matrix):
    """The CI smoke (quick) must gate cleanly against a full baseline."""
    full = scale.run_scale()
    quick = scale.run_scale(quick=True)
    assert list(quick["sizes"]) == ["120"]
    assert quick["sizes"]["120"]["rounds"] == full["sizes"]["120"]["rounds"]
    assert scale.check_scale_regression(quick, full) == []


def test_gate_flags_counter_regressions_and_structure_drift(tiny_matrix):
    baseline = scale.run_scale(quick=True)
    run = json.loads(json.dumps(baseline))  # deep copy
    assert scale.check_scale_regression(run, baseline) == []
    cell = run["sizes"]["120"]
    cell["counters"]["bfs_calls"] = int(
        baseline["sizes"]["120"]["counters"]["bfs_calls"] * 2)
    cell["graph"]["edges"] += 1
    failures = scale.check_scale_regression(run, baseline)
    assert any("bfs_calls regressed" in f for f in failures)
    assert any("graph edges changed" in f for f in failures)
    # Improvements (counters below baseline) never fail.
    cell["counters"]["bfs_calls"] = 1
    cell["graph"]["edges"] -= 1
    assert scale.check_scale_regression(run, baseline) == []


def test_gate_refuses_incomparable_round_counts(tiny_matrix):
    baseline = scale.run_scale(quick=True)
    run = json.loads(json.dumps(baseline))
    run["sizes"]["120"]["rounds"] = baseline["sizes"]["120"]["rounds"] + 1
    failures = scale.check_scale_regression(run, baseline)
    assert any("rounds differ" in f for f in failures)


def test_cli_writes_payload_and_checks(tiny_matrix, tmp_path):
    out = tmp_path / "BENCH_scale.json"
    assert scale.main(["--quick", "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["quick"] is True
    # A second run gates green against the first.
    out2 = tmp_path / "BENCH_scale_2.json"
    rc = scale.main(["--quick", "--out", str(out2),
                     "--check", "--baseline", str(out)])
    assert rc == 0
    assert scale.main(["--check", "--quick", "--out", str(out2),
                       "--baseline", str(tmp_path / "missing.json")]) == 2


def test_mobile_fraction_keeps_delta_path_active(tiny_matrix):
    """The workload must exercise the regime it claims to measure:
    delta rebuilds with a small dirty set, static skip doing the bulk."""
    payload = scale.run_scale(quick=True)
    counters = payload["sizes"]["120"]["counters"]
    assert counters["graph_delta_rebuilds"] >= 1
    assert counters["graph_full_rebuilds"] >= 1  # the initial build
    # Static skip: recomputed positions per refresh ~= mobile count,
    # far below n * refreshes.
    n = 120
    refreshes = counters["graph_rebuilds"]
    assert counters["graph_positions_recomputed"] < n * refreshes / 2
    # Shard dirty tracking: delta refreshes touch fewer shards than a
    # full rebuild's total (full rebuilds count every occupied shard).
    assert counters["graph_shards_touched"] > 0


def test_committed_baseline_matches_schema():
    """BENCH_scale.json at the repo root stays loadable and current."""
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "BENCH_scale.json"
    assert path.exists(), "repo-root BENCH_scale.json baseline missing"
    payload = json.loads(path.read_text())
    assert payload["schema"] == scale.SCALE_SCHEMA_VERSION
    assert set(payload["sizes"]) == {"1000", "10000"}
    for cell in payload["sizes"].values():
        assert cell["graph"]["edges"] > 0
        assert cell["counters"]
