"""Perf counters through the stack: bounded BFS does less work, results
carry the counters, and the bench regression gate behaves."""

from repro.experiments.metrics import RunResult
from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenario import Scenario
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net.hello import HelloService
from repro.net.node import Node
from repro.net.topology import Topology
from repro.perf.bench import check_regression
from repro.sim.engine import Simulator


def make_chain(length, spacing=100.0, tr=150.0):
    sim = Simulator()
    topo = Topology(sim, transmission_range=tr)
    for i in range(length):
        topo.add_node(Node(i, Stationary(Point(i * spacing, 0.0))))
    return sim, topo


def test_bounded_bfs_expands_fewer_nodes_than_full():
    _, topo = make_chain(60)
    topo.within_hops(0, 3)
    bounded = topo.perf.get("bfs_nodes_expanded")
    assert topo.perf.get("bfs_calls") == 1
    topo._bfs_cache.clear()
    topo.reachable(0)
    full = topo.perf.get("bfs_nodes_expanded") - bounded
    # 3-hop scan on a 60-node chain touches a handful of nodes; the
    # unbounded walk expands (nearly) the whole component.
    assert bounded <= 4
    assert full >= 58
    assert bounded < full


def test_hop_bounded_point_query_expands_less():
    _, topo = make_chain(50)
    assert topo.hops(0, 49) == 49
    expanded_full = topo.perf.get("bfs_nodes_expanded")
    topo._bfs_cache.clear()
    assert topo.hops(0, 10, max_hops=3) is None  # farther than the bound
    expanded_bounded = topo.perf.get("bfs_nodes_expanded") - expanded_full
    assert expanded_bounded < expanded_full


def test_nearest_head_with_bound_expands_fewer_nodes():
    _, topo = make_chain(40)
    hello = HelloService(topo.sim, topo)
    is_head = lambda nid: nid == 39  # the far end
    assert hello.nearest_head(0, is_head) == (39, 39)
    full = topo.perf.get("bfs_nodes_expanded")
    topo._bfs_cache.clear()
    assert hello.nearest_head(0, is_head, max_hops=2) is None
    bounded = topo.perf.get("bfs_nodes_expanded") - full
    assert bounded < full


def test_deeper_query_upgrades_cached_bfs():
    _, topo = make_chain(30)
    topo.within_hops(0, 2)
    assert topo.perf.get("bfs_calls") == 1
    topo.within_hops(0, 2)  # served from memo
    assert topo.perf.get("bfs_cache_hits") == 1
    assert topo.perf.get("bfs_calls") == 1
    topo.reachable(0)  # deeper: must re-run ...
    assert topo.perf.get("bfs_calls") == 2
    topo.within_hops(0, 3)  # ... and shallow queries now hit the memo
    assert topo.perf.get("bfs_cache_hits") == 2


def test_run_result_carries_perf_counters():
    scenario = Scenario(num_nodes=15, seed=1, settle_time=5.0)
    result = ScenarioRunner(scenario, "quorum").run()
    assert result.perf_counters  # populated
    assert result.perf_counters.get("bfs_calls", 0) > 0
    assert result.perf_counters.get("graph_rebuilds", 0) > 0
    # Counters must survive the sweep cache's JSON round-trip.
    restored = RunResult.from_dict(result.to_dict())
    assert restored.perf_counters == result.perf_counters
    assert restored == result


def test_run_results_without_counters_omit_key():
    scenario = Scenario(num_nodes=15, seed=1, settle_time=5.0)
    result = ScenarioRunner(scenario, "quorum").run()
    stripped = RunResult.from_dict(
        {k: v for k, v in result.to_dict().items() if k != "perf_counters"})
    assert stripped.perf_counters == {}
    assert "perf_counters" not in stripped.to_dict()


def test_check_regression_flags_only_counter_growth():
    baseline = {"scenarios": {"cell": {"wall_s": 1.0,
                                       "counters": {"bfs_calls": 100,
                                                    "bfs_nodes_expanded": 1000}}}}
    ok = {"scenarios": {"cell": {"wall_s": 99.0,  # wall clock never gated
                                 "counters": {"bfs_calls": 110,
                                              "bfs_nodes_expanded": 900}}}}
    assert check_regression(ok, baseline, tolerance=0.25) == []
    bad = {"scenarios": {"cell": {"wall_s": 0.1,
                                  "counters": {"bfs_calls": 200,
                                               "bfs_nodes_expanded": 1000}}}}
    failures = check_regression(bad, baseline, tolerance=0.25)
    assert len(failures) == 1
    assert "bfs_calls" in failures[0]
    missing = {"scenarios": {}}
    assert check_regression(missing, baseline)  # missing cell reported
