"""Shared builders for protocol-level tests.

Most core-protocol tests run on small hand-built static topologies: a
line of nodes spaced one hop apart is enough to exercise role decisions
(2-hop rule), QDSet formation (3-hop adjacency) and multi-hop routing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.config import ProtocolConfig
from repro.core.protocol import QuorumProtocolAgent
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net.context import NetworkContext
from repro.net.node import Node

HOP = 120.0  # meters between chain neighbors; 1 hop at tr = 150 m


def make_ctx(seed: int = 1, tr: float = 150.0) -> NetworkContext:
    return NetworkContext.build(seed=seed, transmission_range=tr)


def add_node(ctx: NetworkContext, node_id: int, x: float, y: float = 500.0,
             cfg: Optional[ProtocolConfig] = None) -> QuorumProtocolAgent:
    """Add a stationary node with a quorum agent (not yet entered)."""
    node = Node(node_id, Stationary(Point(x, y)))
    ctx.topology.add_node(node)
    return QuorumProtocolAgent(ctx, node, cfg or ProtocolConfig())


def line_agents(
    ctx: NetworkContext,
    count: int,
    spacing: float = HOP,
    cfg: Optional[ProtocolConfig] = None,
    start_x: float = 100.0,
    enter_gap: float = 5.0,
) -> List[QuorumProtocolAgent]:
    """A chain of ``count`` nodes entering sequentially.

    With default spacing each link is one hop; node i sits i hops from
    node 0.  ``enter_gap`` seconds between entries lets each node finish
    configuring (including the first node's T_e * Max_r wait) before the
    next arrives.
    """
    cfg = cfg or ProtocolConfig()
    agents = []
    for i in range(count):
        agent = add_node(ctx, i, start_x + spacing * i, cfg=cfg)
        ctx.sim.schedule(enter_gap * i + 0.1, agent.on_enter)
        agents.append(agent)
    return agents


def run_until_quiet(ctx: NetworkContext, until: float) -> None:
    ctx.sim.run(until=until)


def positions_cluster(
    ctx: NetworkContext,
    coordinates: Sequence[Tuple[float, float]],
    cfg: Optional[ProtocolConfig] = None,
    enter_gap: float = 5.0,
) -> List[QuorumProtocolAgent]:
    """Agents at explicit coordinates, entering sequentially."""
    cfg = cfg or ProtocolConfig()
    agents = []
    for i, (x, y) in enumerate(coordinates):
        agent = add_node(ctx, i, x, y, cfg=cfg)
        ctx.sim.schedule(enter_gap * i + 0.1, agent.on_enter)
        agents.append(agent)
    return agents


def assert_unique_addresses(agents: Sequence[QuorumProtocolAgent]) -> None:
    seen = {}
    for agent in agents:
        if agent.ip is None or not agent.node.alive:
            continue
        key = (agent.network_id, agent.ip)
        assert key not in seen, (
            f"duplicate address {key}: nodes {seen[key]} and {agent.node_id}"
        )
        seen[key] = agent.node_id
