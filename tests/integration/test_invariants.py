"""System-wide invariants across randomized scenarios.

These are the properties the paper claims for the protocol (Section I):
address uniqueness, data consistency under partition, and address
availability — checked over a spread of seeds and workloads.
"""

import pytest

from repro.experiments import Scenario, ScenarioRunner
from repro.addrspace.records import AddressStatus


def run(seed, **kw):
    kw.setdefault("num_nodes", 40)
    kw.setdefault("settle_time", 25.0)
    runner = ScenarioRunner(Scenario.paper_default(seed=seed, **kw))
    return runner, runner.run()


@pytest.mark.parametrize("seed", range(1, 9))
def test_address_uniqueness_across_seeds(seed):
    """No two alive nodes ever end up with the same (network, ip)."""
    _, result = run(seed)
    assert result.uniqueness_ok(), result.duplicate_addresses


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_address_uniqueness_with_churn(seed):
    _, result = run(seed, num_nodes=60, depart_fraction=0.5,
                    abrupt_probability=0.4, settle_time=40.0)
    assert result.uniqueness_ok()


@pytest.mark.parametrize("seed", [1, 2])
def test_no_address_owned_by_two_heads(seed):
    """Within one network, every address has at most one owning pool."""
    runner, result = run(seed, num_nodes=60)
    owners = {}
    for agent in runner.ctx.agents.values():
        head = getattr(agent, "head", None)
        if head is None or not agent.node.alive:
            continue
        for block in head.pool.snapshot_blocks():
            for address in block.addresses():
                key = (agent.network_id, address)
                assert key not in owners, (
                    f"{key} owned by {owners[key]} and {agent.node_id}")
                owners[key] = agent.node_id


@pytest.mark.parametrize("seed", [1, 2])
def test_allocator_ledgers_match_pools(seed):
    """An allocator's ledger ASSIGNED set matches its pool's allocated
    set (internal consistency)."""
    runner, _ = run(seed, num_nodes=50)
    for agent in runner.ctx.agents.values():
        head = getattr(agent, "head", None)
        if head is None or not agent.node.alive:
            continue
        for address in head.pool.allocated:
            record = head.ledger.peek(address)
            assert record is not None
            assert record.status is AddressStatus.ASSIGNED, (
                f"head {agent.node_id}: {address} allocated but ledger "
                f"says {record.status}")


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_held_addresses_booked_at_most_once(seed):
    """A held address is booked by at most one live allocator of its
    network.  (Zero bookings — a leak where the holder's allocator left
    and the handoff failed — is an availability loss, not a safety
    violation; the address is then out of circulation, never duplicated.)
    """
    runner, result = run(seed, num_nodes=50)
    ctx = runner.ctx
    for agent in ctx.agents.values():
        common = getattr(agent, "common", None)
        if common is None or not agent.node.alive:
            continue
        bookers = [
            other.node_id for other in ctx.agents.values()
            if getattr(other, "head", None) is not None
            and other.node.alive
            and other.network_id == agent.network_id
            and common.ip in other.head.pool.allocated
        ]
        assert len(bookers) <= 1, (
            f"address {common.ip} of node {agent.node_id} booked by "
            f"{bookers}")


def test_graceful_churn_preserves_address_space():
    """After all departures settle, the space booked by live allocators
    plus free space accounts for every live holder (no double-booking,
    bounded leakage)."""
    runner, result = run(3, num_nodes=50, depart_fraction=0.4,
                         abrupt_probability=0.0, settle_time=40.0)
    ctx = runner.ctx
    per_network_booked = {}
    for agent in ctx.agents.values():
        head = getattr(agent, "head", None)
        if head is None or not agent.node.alive:
            continue
        booked = per_network_booked.setdefault(agent.network_id, set())
        for address in head.pool.allocated:
            assert address not in booked
            booked.add(address)


def test_metrics_survive_every_workload():
    _, result = run(5, num_nodes=40, depart_fraction=0.6,
                    abrupt_probability=0.5, settle_time=40.0)
    # All derived metrics are computable without error.
    assert result.avg_config_latency_hops() >= 0
    assert result.config_overhead_per_node() >= 0
    assert result.departure_overhead_per_departure() >= 0
    assert result.maintenance_overhead() >= 0
    assert result.reclamation_overhead() >= 0
    assert 0 <= result.information_loss_pct() <= 100
