"""End-to-end scenario tests mirroring the examples."""

import pytest

from repro.core import ProtocolConfig
from repro.core.protocol import QuorumProtocolAgent
from repro.experiments import Scenario, ScenarioRunner
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net.context import NetworkContext
from repro.net.node import Node


def spawn_convoy(ctx, cfg, base_id, origin, count, start_time,
                 spacing=110.0):
    agents = []
    for i in range(count):
        node = Node(base_id + i,
                    Stationary(Point(origin[0] + spacing * i, origin[1])))
        ctx.topology.add_node(node)
        agent = QuorumProtocolAgent(ctx, node, cfg)
        ctx.sim.schedule(start_time + 4.0 * i + 0.1, agent.on_enter)
        agents.append(agent)
    return agents


def test_convoy_merge_converges_to_one_network():
    """The examples/convoy_merge.py scenario, as a regression test."""
    ctx = NetworkContext.build(seed=3, transmission_range=150.0)
    cfg = ProtocolConfig(merge_check_interval=1.0)
    convoy_a = spawn_convoy(ctx, cfg, 0, (100.0, 200.0), 6, 0.0)
    convoy_b = spawn_convoy(ctx, cfg, 100, (100.0, 900.0), 6, 40.0)
    ctx.sim.run(until=90.0)
    assert ({a.network_id for a in convoy_a}
            != {b.network_id for b in convoy_b})
    for i, agent in enumerate(convoy_b):
        agent.node.mobility = Stationary(Point(100.0 + 110.0 * i, 320.0))
    ctx.topology.invalidate()
    ctx.sim.run(until=ctx.sim.now + 120.0)
    everyone = convoy_a + convoy_b
    assert all(a.is_configured() for a in everyone)
    assert len({a.network_id for a in everyone}) == 1
    seen = set()
    for agent in everyone:
        key = (agent.network_id, agent.ip)
        assert key not in seen
        seen.add(key)


def test_disaster_recovery_scenario():
    """The examples/disaster_recovery.py scenario, as a regression test."""
    scenario = Scenario.paper_default(
        num_nodes=80, seed=7,
        depart_fraction=0.3, abrupt_probability=1.0,
        depart_window=5.0, settle_time=50.0,
        uniform_arrival_fraction=0.0,
    )
    runner = ScenarioRunner(scenario, "quorum", ProtocolConfig())
    result = runner.run()
    assert result.information_loss_pct() <= 10.0
    assert result.uniqueness_ok()
    # Newcomers after the disaster still get configured.
    ctx = runner.ctx
    anchor = ctx.topology.nodes()[0].position(ctx.sim.now)
    newcomers = []
    for i in range(3):
        node = Node(1000 + i, Stationary(Point(anchor.x + 20 * i, anchor.y)))
        ctx.topology.add_node(node)
        agent = QuorumProtocolAgent(ctx, node, ProtocolConfig())
        ctx.sim.schedule(2.0 * i + 0.1, agent.on_enter)
        newcomers.append(agent)
    ctx.sim.run(until=ctx.sim.now + 40.0)
    assert sum(1 for a in newcomers if a.is_configured()) >= 2


def test_hotspot_arrivals_with_tight_space():
    """Borrowing keeps a hot spot configurable (the paper's §I claim)."""
    from repro.experiments.figures import quorum_cfg
    scenario = Scenario.paper_default(
        num_nodes=50, seed=2,
        hotspot=(500.0, 500.0), hotspot_radius=100.0,
        settle_time=25.0,
    )
    runner = ScenarioRunner(scenario, "quorum",
                            quorum_cfg(address_space_bits=7))
    result = runner.run()
    assert result.configuration_success_rate() >= 0.9
    assert result.uniqueness_ok()


@pytest.mark.parametrize("protocol", ["quorum", "manetconf", "buddy",
                                      "ctree", "prophet", "weakdad"])
def test_high_churn_soak(protocol):
    """Every protocol survives sustained churn without crashing, and
    the quorum protocol additionally keeps addresses unique."""
    scenario = Scenario.paper_default(
        num_nodes=50, seed=9,
        depart_fraction=0.6, abrupt_probability=0.5,
        depart_window=40.0, settle_time=40.0,
    )
    result = ScenarioRunner(scenario, protocol).run()
    assert result.num_nodes == 50
    if protocol == "quorum":
        assert result.uniqueness_ok()
