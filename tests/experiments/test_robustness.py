"""The robustness experiment: faults engage the quorum repair machinery."""

from repro.experiments import figures


def test_robustness_experiment_counters_engage():
    result = figures.robustness_vs_loss(
        loss_rates=(0.0, 0.2), num_nodes=30, seeds=(1,),
        crash_fraction=0.15)
    s = result["series"]
    assert set(s) == {
        "quorum/conflicts", "quorum/adjustments", "quorum/reclamations",
        "manetconf/conflicts", "dad/conflicts",
    }
    assert all(len(v) == 2 for v in s.values())
    assert result["x"] == [0.0, 0.2]
    # Acceptance: under loss the quorum protocol's adjustment and
    # reclamation machinery must actually fire (crashes + abrupt
    # departures drive T_d/T_r; loss stresses the exchanges on top).
    assert s["quorum/adjustments"][1] > 0
    assert s["quorum/reclamations"][1] > 0


def test_robustness_registered_as_cli_figure():
    from repro.cli import FIGURES

    assert FIGURES["robustness"] is figures.robustness_vs_loss
