"""Scenario definition validation."""

import pytest

from repro.experiments import Scenario


def test_paper_default_matches_section_vi():
    scenario = Scenario.paper_default()
    assert scenario.area == (1000.0, 1000.0)
    assert scenario.transmission_range == 150.0
    assert scenario.speed_mps == 20.0


def test_paper_default_overrides():
    scenario = Scenario.paper_default(num_nodes=50, seed=7,
                                      transmission_range=200.0)
    assert scenario.num_nodes == 50
    assert scenario.seed == 7
    assert scenario.transmission_range == 200.0


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        Scenario(num_nodes=0)
    with pytest.raises(ValueError):
        Scenario(transmission_range=0)
    with pytest.raises(ValueError):
        Scenario(depart_fraction=2.0)
    with pytest.raises(ValueError):
        Scenario(abrupt_probability=-0.5)
