"""Unit tests for ASCII report rendering."""

from repro.experiments import format_series, format_table


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0] and "value" in lines[0]
    assert set(lines[1]) <= {"-", "+"}
    assert "2.50" in lines[3]


def test_format_table_empty_rows():
    text = format_table(["x"], [])
    assert "x" in text


def test_format_series_shape():
    result = {
        "title": "Fig. X — demo",
        "xlabel": "nodes",
        "ylabel": "hops",
        "x": [50, 100],
        "series": {"quorum": [1.0, 2.0], "manetconf": [3.0, 4.0]},
    }
    text = format_series(result)
    assert "Fig. X — demo" in text
    assert "(y: hops)" in text
    assert "quorum" in text and "manetconf" in text
    assert "50" in text and "4.00" in text
