"""Unit tests for derived run metrics."""

from repro.experiments.metrics import DeathRecord, NodeOutcome, RunResult


def outcome(node_id, configured=True, latency=5, is_head=False, ip=None,
            alive=True, network_id=1024):
    return NodeOutcome(
        node_id=node_id, configured=configured, failed=False,
        latency_hops=latency if configured else None,
        latency_time=0.5 if configured else None,
        attempts=1, is_head=is_head,
        ip=ip if ip is not None else node_id,
        network_id=network_id, alive=alive, reconfigurations=0,
    )


def result(outcomes, hops=None, deaths=(), graceful=0, abrupt=0,
           protocol="quorum", graceful_ids=frozenset()):
    base = {c: 0 for c in
            ("config", "departure", "movement", "maintenance",
             "reclamation", "partition", "hello")}
    base.update(hops or {})
    return RunResult(
        protocol=protocol, num_nodes=len(outcomes), duration=100.0,
        outcomes=list(outcomes), stats_hops=base, stats_msgs=dict(base),
        deaths=list(deaths), graceful_departures=graceful,
        abrupt_departures=abrupt, graceful_ids=graceful_ids,
    )


def test_basic_counters():
    r = result([outcome(0), outcome(1, configured=False)])
    assert r.configured_count() == 1
    assert r.configuration_success_rate() == 0.5


def test_latency_averages_only_configured():
    r = result([outcome(0, latency=4), outcome(1, latency=8),
                outcome(2, configured=False)])
    assert r.avg_config_latency_hops() == 6.0
    assert r.avg_config_latency_time() == 0.5


def test_config_overhead_per_node():
    r = result([outcome(0), outcome(1)],
               hops={"config": 10, "maintenance": 6})
    assert r.config_overhead_per_node() == 8.0
    assert r.config_overhead_per_node(include_maintenance=False) == 5.0


def test_departure_overhead():
    r = result([outcome(0)], hops={"departure": 12}, graceful=4)
    assert r.departure_overhead_per_departure() == 3.0


def test_maintenance_overhead_sums_three_categories():
    r = result([outcome(i) for i in range(4)],
               hops={"movement": 4, "departure": 4, "maintenance": 8})
    assert r.maintenance_overhead() == 4.0


def test_reclamation_overhead():
    r = result([outcome(0)], hops={"reclamation": 30}, abrupt=3)
    assert r.reclamation_overhead() == 10.0


def test_extension_ratio_aggregate():
    r = result([outcome(0)])
    r.ip_space_total = 100
    r.quorum_space_total = 300
    assert r.avg_extension_ratio() == 4.0


def test_extension_ratio_defaults_to_one():
    assert result([outcome(0)]).avg_extension_ratio() == 1.0


def test_information_loss_quorum_survivors():
    deaths = [DeathRecord(node_id=9, time=50.0, was_head=True,
                          qdset_members=(1, 2, 3))]
    alive = [outcome(i) for i in (1, 2, 3)]
    r = result(alive, deaths=deaths, abrupt=1)
    assert r.information_loss_pct() == 0.0


def test_information_loss_quorum_majority_dead():
    deaths = [DeathRecord(node_id=9, time=50.0, was_head=True,
                          qdset_members=(1, 2, 3))]
    survivors = [outcome(1), outcome(2, alive=False), outcome(3, alive=False)]
    r = result(survivors, deaths=deaths, abrupt=3)
    assert r.information_loss_pct() == 100.0


def test_information_loss_counts_graceful_as_survivor():
    deaths = [DeathRecord(node_id=9, time=50.0, was_head=True,
                          qdset_members=(1, 2))]
    survivors = [outcome(1), outcome(2, alive=False)]
    r = result(survivors, deaths=deaths, abrupt=1,
               graceful_ids=frozenset({2}))
    assert r.information_loss_pct() == 0.0


def test_information_loss_ctree_root_death():
    deaths = [
        DeathRecord(node_id=9, time=50.0, was_head=True,
                    ever_reported=True, root_id=0,
                    allocations_since_report=0, allocations_total=4),
        DeathRecord(node_id=0, time=50.0, was_head=True,
                    ever_reported=True, root_id=0,
                    allocations_since_report=0, allocations_total=4),
    ]
    r = result([outcome(1)], deaths=deaths, abrupt=2, protocol="ctree")
    assert r.information_loss_pct() == 100.0


def test_information_loss_ctree_unreported_fraction():
    deaths = [DeathRecord(node_id=9, time=50.0, was_head=True,
                          ever_reported=True, root_id=0,
                          allocations_since_report=1, allocations_total=4)]
    r = result([outcome(0)], deaths=deaths, abrupt=1, protocol="ctree")
    assert r.information_loss_pct() == 25.0


def test_duplicate_detection_flag():
    r = result([outcome(0)])
    assert r.uniqueness_ok()
    r.duplicate_addresses = 1
    assert not r.uniqueness_ok()
