"""Tests for the fluent ScenarioBuilder."""

import pytest

from repro.experiments.builder import (
    ScenarioBuilder,
    paper_scenario,
    scenario_grid,
)
from repro.experiments.scenario import Scenario
from repro.faults import FaultSpec


@pytest.fixture(autouse=True)
def reset_default_faults():
    yield
    ScenarioBuilder.set_default_faults(None)


def test_empty_builder_matches_paper_default():
    assert ScenarioBuilder().build() == Scenario.paper_default()


def test_fluent_chain_matches_explicit_scenario():
    built = (ScenarioBuilder()
             .nodes(80).seed(3).range(200.0).speed(10.0)
             .area(2000.0, 1000.0)
             .arrivals(inter_arrival=2.0, connected=False,
                       uniform_fraction=0.2)
             .departures(fraction=0.4, abrupt=0.5, after=10.0, window=30.0)
             .hotspot(500.0, 500.0, radius=50.0)
             .settle(45.0)
             .build())
    assert built == Scenario(
        num_nodes=80, seed=3, transmission_range=200.0, speed_mps=10.0,
        area=(2000.0, 1000.0), inter_arrival=2.0, connected_arrivals=False,
        uniform_arrival_fraction=0.2, depart_fraction=0.4,
        abrupt_probability=0.5, depart_after=10.0, depart_window=30.0,
        hotspot=(500.0, 500.0), hotspot_radius=50.0, settle_time=45.0,
    )


def test_paper_scenario_matches_paper_default():
    assert paper_scenario(num_nodes=150, seed=2, settle_time=10.0) == \
        Scenario.paper_default(num_nodes=150, seed=2, settle_time=10.0)


def test_scenario_grid_order_and_content():
    grid = scenario_grid((50, 100), (1, 2), settle_time=5.0)
    assert [(s.num_nodes, s.seed) for s in grid] == [
        (50, 1), (50, 2), (100, 1), (100, 2)]
    assert all(s.settle_time == 5.0 for s in grid)


# ---------------------------------------------------------------------------
# Validation errors name the offending field
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("build,field", [
    (lambda b: b.nodes(0), "num_nodes"),
    (lambda b: b.range(-1.0), "transmission_range"),
    (lambda b: b.speed(-5.0), "speed_mps"),
    (lambda b: b.area(0.0, 100.0), "area"),
    (lambda b: b.arrivals(inter_arrival=0.0), "inter_arrival"),
    (lambda b: b.arrivals(uniform_fraction=1.5), "uniform_fraction"),
    (lambda b: b.departures(fraction=1.2), "fraction"),
    (lambda b: b.departures(fraction=0.5, abrupt=-0.1), "abrupt"),
    (lambda b: b.hotspot(1.0, 2.0, radius=0.0), "radius"),
    (lambda b: b.settle(-1.0), "settle_time"),
])
def test_validation_names_bad_field(build, field):
    with pytest.raises(ValueError, match=field):
        build(ScenarioBuilder())


def test_unknown_override_field_rejected():
    with pytest.raises(ValueError, match="no_such_field"):
        ScenarioBuilder().overrides(no_such_field=1)


# ---------------------------------------------------------------------------
# Fault attachment
# ---------------------------------------------------------------------------
def test_faults_by_kwargs_and_by_spec():
    by_kwargs = ScenarioBuilder().faults(loss_rate=0.1).build()
    by_spec = ScenarioBuilder().faults(FaultSpec(loss_rate=0.1)).build()
    assert by_kwargs.faults == by_spec.faults == FaultSpec(loss_rate=0.1)


def test_faults_spec_and_kwargs_together_rejected():
    with pytest.raises(ValueError, match="not both"):
        ScenarioBuilder().faults(FaultSpec(), loss_rate=0.1)


def test_null_faults_normalized_to_none():
    assert ScenarioBuilder().faults(FaultSpec()).build().faults is None


def test_default_faults_attach_to_every_build():
    ScenarioBuilder.set_default_faults(FaultSpec(loss_rate=0.2))
    assert ScenarioBuilder().build().faults == FaultSpec(loss_rate=0.2)
    assert paper_scenario(num_nodes=10).faults == FaultSpec(loss_rate=0.2)
    # Scenario.paper_default bypasses the builder and stays fault-free.
    assert Scenario.paper_default().faults is None


def test_explicit_faults_beat_the_default():
    ScenarioBuilder.set_default_faults(FaultSpec(loss_rate=0.2))
    built = ScenarioBuilder().faults(loss_rate=0.05).build()
    assert built.faults == FaultSpec(loss_rate=0.05)


def test_null_default_faults_normalized_to_none():
    ScenarioBuilder.set_default_faults(FaultSpec())
    assert ScenarioBuilder.default_faults() is None
    assert ScenarioBuilder().build().faults is None
