"""The parallel sweep executor: determinism, caching, failure paths."""

import dataclasses
import json

import pytest

from repro.core.config import ProtocolConfig
from repro.experiments import Scenario, figures, run_specs
from repro.experiments.metrics import DeathRecord, NodeOutcome, RunResult
from repro.experiments.sweep import (
    RunCache,
    RunSpec,
    SweepExecutor,
    SweepSummary,
    derive_seeds,
    execute_spec,
    expand_grid,
    set_default_executor,
    sweep_over_seeds,
)


def tiny(seed=1, **kw):
    kw.setdefault("num_nodes", 12)
    kw.setdefault("settle_time", 5.0)
    kw.setdefault("speed_mps", 0.0)
    return Scenario.paper_default(seed=seed, **kw)


def tiny_specs(protocols=("quorum", "dad"), seeds=(1, 2)):
    return expand_grid(list(protocols), [tiny(seed=s) for s in seeds])


@pytest.fixture(autouse=True)
def _reset_default_executor():
    yield
    set_default_executor(None)


# ---------------------------------------------------------------------------
# Spec keys
# ---------------------------------------------------------------------------
def test_spec_key_stable():
    assert RunSpec("quorum", tiny()).key() == RunSpec("quorum", tiny()).key()


def test_spec_key_covers_every_input():
    base = RunSpec("quorum", tiny())
    assert base.key() != RunSpec("dad", tiny()).key()
    assert base.key() != RunSpec("quorum", tiny(seed=2)).key()
    assert base.key() != RunSpec("quorum", tiny(num_nodes=13)).key()
    assert base.key() != RunSpec(
        "quorum", tiny(), ProtocolConfig(borrowing_enabled=False)).key()
    assert base.key() != RunSpec("quorum", tiny(), count_hello_cost=True).key()


# ---------------------------------------------------------------------------
# RunResult serialization round-trip (the cache's correctness anchor)
# ---------------------------------------------------------------------------
def test_runresult_json_roundtrip_is_lossless():
    result = execute_spec(RunSpec(
        "quorum", tiny(num_nodes=20, depart_fraction=0.3,
                       abrupt_probability=0.5, speed_mps=20.0,
                       settle_time=20.0)))
    assert result.deaths or result.graceful_departures  # exercise both lists
    restored = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored == result


def test_runresult_roundtrip_covers_every_field():
    """A fully-populated result — every optional observability field
    included — survives the JSON round-trip, and an unpopulated result
    ships none of the optional fields (the cache-format back-compat
    guarantee)."""
    full = RunResult(
        protocol="quorum",
        num_nodes=2,
        duration=30.0,
        outcomes=[NodeOutcome(node_id=1, configured=True, failed=False,
                              latency_hops=2, latency_time=1.5, attempts=1,
                              is_head=True, ip=7, network_id=1, alive=True,
                              reconfigurations=0)],
        stats_hops={"config": 4},
        stats_msgs={"config": 2},
        deaths=[DeathRecord(node_id=2, time=9.0, was_head=False,
                            qdset_members=(1,), ever_reported=True,
                            allocations_since_report=1,
                            allocations_total=3, root_id=1)],
        graceful_departures=1,
        abrupt_departures=1,
        graceful_ids=frozenset({3}),
        qdset_sizes=[2, 3],
        extension_ratios=[0.5],
        ip_space_total=64,
        quorum_space_total=16,
        head_count=1,
        duplicate_addresses=0,
        leaked_addresses=0,
        stats_drops={"config": 1},
        events={"quorum_shrink": 2},
        perf_counters={"graph_rebuilds": 5},
        obs_histograms={"config_attempt": [0, 1, 0]},
        obs_spans={"config_attempt:ok": 1},
        obs_metrics={"agents_live": [0, 1, 2]},
    )
    payload = full.to_dict()
    # Every dataclass field is present when populated...
    assert set(payload) == {f.name for f in dataclasses.fields(RunResult)}
    assert RunResult.from_dict(json.loads(json.dumps(payload))) == full

    # ...and every empty optional is dropped from the payload.
    bare = RunResult(protocol="dad", num_nodes=0, duration=0.0, outcomes=[],
                     stats_hops={}, stats_msgs={}, deaths=[],
                     graceful_departures=0, abrupt_departures=0)
    trimmed = bare.to_dict()
    for optional in ("stats_drops", "events", "perf_counters",
                     "obs_histograms", "obs_spans", "obs_metrics"):
        assert optional not in trimmed
    assert RunResult.from_dict(json.loads(json.dumps(trimmed))) == bare


# ---------------------------------------------------------------------------
# Determinism: serial == parallel, cell for cell
# ---------------------------------------------------------------------------
def test_parallel_sweep_identical_to_serial():
    specs = tiny_specs()
    serial = SweepExecutor(workers=1).run(specs)
    parallel = SweepExecutor(workers=2).run(specs)
    assert serial.results == parallel.results
    assert parallel.stats.get("executed") == len(specs)


def test_conn_label_counters_deterministic_serial_vs_parallel():
    """The connectivity-label layer's counters are part of the recorded
    run surface: a churny quorum run must exercise the label path and
    produce bit-identical counters from serial and parallel sweeps."""
    specs = [RunSpec("quorum", tiny(seed=s, num_nodes=24, speed_mps=10.0,
                                    depart_fraction=0.4,
                                    abrupt_probability=0.5,
                                    settle_time=20.0))
             for s in (1, 2)]
    serial = SweepExecutor(workers=1).run(specs)
    parallel = SweepExecutor(workers=2).run(specs)
    for left, right in zip(serial.results, parallel.results):
        assert left.perf_counters == right.perf_counters
        assert left.perf_counters.get("conn_relabels", 0) > 0
        assert left.perf_counters.get("conn_label_hits", 0) > 0


def test_figure_identical_serial_vs_parallel():
    kwargs = dict(sizes=(12, 16), seeds=(1, 2), transmission_range=150.0)
    set_default_executor(SweepExecutor(workers=1))
    serial = figures.fig05_latency_vs_size(**kwargs)
    set_default_executor(SweepExecutor(workers=2))
    parallel = figures.fig05_latency_vs_size(**kwargs)
    # Byte-identical metric output, not merely approximately equal.
    assert json.dumps(serial, sort_keys=True) == json.dumps(
        parallel, sort_keys=True)


def test_derived_seeds_stable_and_distinct():
    assert derive_seeds(0, 3) == derive_seeds(0, 3)
    assert len(set(derive_seeds(0, 8))) == 8
    assert derive_seeds(0, 3) != derive_seeds(1, 3)
    assert derive_seeds(0, 3, "a") != derive_seeds(0, 3, "b")


def test_results_keep_spec_order():
    specs = tiny_specs(protocols=("dad", "quorum", "weakdad"), seeds=(1,))
    report = SweepExecutor(workers=3).run(specs)
    assert [r.protocol for r in report.results] == [
        s.protocol for s in specs]


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------
def test_cache_hit_returns_without_executing(tmp_path, monkeypatch):
    specs = tiny_specs(protocols=("quorum",), seeds=(1, 2))
    first = SweepExecutor(workers=1, cache_dir=tmp_path).run(specs)
    assert first.stats.get("executed") == 2

    # Re-running must not execute at all: poison the execution path.
    import repro.experiments.sweep as sweep_mod
    def boom(spec):
        raise AssertionError("cache hit must not execute the simulation")
    monkeypatch.setattr(sweep_mod, "execute_spec", boom)

    again = SweepExecutor(workers=1, cache_dir=tmp_path)
    second = again.run(specs)
    assert second.results == first.results
    assert second.cached == [True, True]
    assert second.cache_hit_rate() == 1.0
    assert again.stats.get("cache_hit") == 2
    assert again.stats.get("executed") == 0


def test_cached_results_equal_fresh_ones(tmp_path):
    specs = tiny_specs()
    fresh = SweepExecutor(workers=2, cache_dir=tmp_path / "a").run(specs)
    SweepExecutor(workers=2, cache_dir=tmp_path / "b").run(specs)
    cached = SweepExecutor(workers=1, cache_dir=tmp_path / "b").run(specs)
    assert cached.results == fresh.results
    assert all(cached.cached)


def test_corrupted_cache_entry_falls_back_to_rerun(tmp_path):
    specs = tiny_specs(protocols=("quorum",), seeds=(1,))
    executor = SweepExecutor(workers=1, cache_dir=tmp_path)
    first = executor.run(specs)

    cache = RunCache(tmp_path)
    cache.path_for(specs[0]).write_text("{ not json")
    rerun = SweepExecutor(workers=1, cache_dir=tmp_path).run(specs)
    assert rerun.cached == [False]
    assert rerun.results == first.results
    # ...and the re-run healed the entry.
    healed = SweepExecutor(workers=1, cache_dir=tmp_path).run(specs)
    assert healed.cached == [True]


def test_version_mismatch_treated_as_miss(tmp_path):
    specs = tiny_specs(protocols=("dad",), seeds=(1,))
    SweepExecutor(workers=1, cache_dir=tmp_path).run(specs)
    cache = RunCache(tmp_path)
    path = cache.path_for(specs[0])
    payload = json.loads(path.read_text())
    payload["version"] = 999
    path.write_text(json.dumps(payload))
    assert cache.get(specs[0]) is None


# ---------------------------------------------------------------------------
# Failures and plumbing
# ---------------------------------------------------------------------------
def test_failing_run_raises_and_counts():
    bad = RunSpec("carrier-pigeon", tiny())
    executor = SweepExecutor(workers=1)
    with pytest.raises(ValueError):
        executor.run([bad])
    assert executor.stats.get("failed") == 1


def test_failing_run_raises_in_parallel_mode():
    executor = SweepExecutor(workers=2)
    with pytest.raises(ValueError):
        executor.run([RunSpec("carrier-pigeon", tiny()),
                      RunSpec("quorum", tiny())])
    assert executor.stats.get("failed") == 1


def test_progress_callback_sees_every_cell(tmp_path):
    seen = []
    specs = tiny_specs(protocols=("quorum",), seeds=(1, 2))
    SweepExecutor(workers=1, cache_dir=tmp_path,
                  progress=lambda d, t, s: seen.append((d, t))).run(specs)
    assert seen == [(1, 2), (2, 2)]


def test_run_specs_convenience_matches_executor():
    specs = tiny_specs(protocols=("quorum",), seeds=(1,))
    assert run_specs(specs, workers=1) == SweepExecutor(
        workers=1).run(specs).results


def test_sweep_over_seeds_matches_direct_runs():
    results = sweep_over_seeds(
        lambda seed: tiny(seed=seed), "quorum", (1, 2),
        executor=SweepExecutor(workers=1))
    direct = [execute_spec(RunSpec("quorum", tiny(seed=s))) for s in (1, 2)]
    assert results == direct


# ---------------------------------------------------------------------------
# Streaming: spec-order cells, incremental folds, byte-identity
# ---------------------------------------------------------------------------
def test_stream_yields_cells_in_spec_order_parallel():
    specs = tiny_specs()
    cells = list(SweepExecutor(workers=2).stream(specs))
    assert [c.index for c in cells] == list(range(len(specs)))
    assert [c.spec for c in cells] == specs
    assert [c.result for c in cells] == SweepExecutor(
        workers=1).run(specs).results


def test_streamed_summary_byte_identical_to_materialized():
    specs = tiny_specs()
    streamed = SweepSummary()
    for cell in SweepExecutor(workers=1).stream(specs):
        streamed.fold(cell)
    materialized = SweepExecutor(workers=2).run(specs).summary()
    assert streamed.to_json() == materialized.to_json()


def test_streamed_summary_with_cache_hits_byte_identical(tmp_path):
    specs = tiny_specs(protocols=("quorum",), seeds=(1, 2))
    SweepExecutor(workers=1, cache_dir=tmp_path).run(specs)  # prime
    streamed = SweepSummary()
    for cell in SweepExecutor(workers=1, cache_dir=tmp_path).stream(specs):
        streamed.fold(cell)
    assert streamed.cached == len(specs)
    materialized = SweepExecutor(
        workers=1, cache_dir=tmp_path).run(specs).summary()
    assert streamed.to_json() == materialized.to_json()


def test_report_stream_replays_and_summary_matches_aggregates():
    specs = tiny_specs(protocols=("quorum",), seeds=(1,))
    report = SweepExecutor(workers=1).run(specs)
    cells = list(report.stream())
    assert [c.result for c in cells] == report.results
    folded = SweepSummary()
    for cell in cells:
        folded.fold(cell)
    assert folded.to_json() == report.summary().to_json()
    # The fold surface mirrors the report's aggregates byte for byte.
    for fold_value, report_value in (
            (folded.perf_totals(), report.perf_totals()),
            (folded.obs_histogram_totals(), report.obs_histogram_totals()),
            (folded.obs_span_totals(), report.obs_span_totals()),
            (folded.cache_hit_rate(), report.cache_hit_rate())):
        assert json.dumps(fold_value) == json.dumps(report_value)


def test_abandoned_stream_shuts_down_cleanly():
    specs = tiny_specs()
    stream = SweepExecutor(workers=2).stream(specs)
    first = next(stream)
    assert first.index == 0
    stream.close()  # must cancel the rest without hanging or raising


def test_stream_byte_identity_at_1000_cells(monkeypatch):
    """The streaming contract at the scale it exists for: 1000 cells
    through the real executor and fold machinery.  The simulation body
    is stubbed to a cheap deterministic result — a full 1000-cell
    protocol grid is minutes of compute, and the machinery under test
    (ordering, folding, serialization) is identical either way."""
    import repro.experiments.sweep as sweep_mod

    def fake(spec):
        seed = spec.scenario.seed
        return RunResult(
            protocol=spec.protocol, num_nodes=spec.scenario.num_nodes,
            duration=1.0, outcomes=[], stats_hops={"CONFIG": seed},
            stats_msgs={}, deaths=[], graceful_departures=0,
            abrupt_departures=0,
            perf_counters={"bfs_calls": seed, "graph_rebuilds": seed % 7},
            obs_spans={"completed": 1 + seed % 3},
        )

    monkeypatch.setattr(sweep_mod, "execute_spec", fake)
    scenarios = [tiny(seed=s) for s in range(1, 501)]
    specs = expand_grid(["quorum", "dad"], scenarios)
    assert len(specs) == 1000
    streamed = SweepSummary()
    for cell in SweepExecutor(workers=1).stream(specs):
        streamed.fold(cell)
    materialized = SweepExecutor(workers=1).run(specs).summary()
    assert streamed.cells == 1000
    assert streamed.to_json() == materialized.to_json()
    assert streamed.perf_totals()["bfs_calls"] == 2 * sum(range(1, 501))


def test_expand_grid_order_and_configs():
    scenarios = [tiny(seed=1), tiny(seed=2)]
    cfg = ProtocolConfig(merge_detection_enabled=False)
    specs = expand_grid(["quorum", "dad"], scenarios, configs={"quorum": cfg})
    assert [(s.protocol, s.scenario.seed) for s in specs] == [
        ("quorum", 1), ("quorum", 2), ("dad", 1), ("dad", 2)]
    assert specs[0].protocol_config is cfg
    assert specs[2].protocol_config is None
