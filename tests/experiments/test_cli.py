"""CLI smoke and behavior tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_defaults():
    args = build_parser().parse_args(["run"])
    assert args.protocol == "quorum"
    assert args.nodes == 100


def test_run_command_prints_report(capsys):
    code = main(["run", "--nodes", "20", "--seed", "1", "--settle", "10"])
    out = capsys.readouterr().out
    assert code == 0
    assert "configured" in out
    assert "unique addresses" in out


def test_run_with_baseline_protocol(capsys):
    code = main(["run", "--protocol", "ctree", "--nodes", "15",
                 "--settle", "10"])
    out = capsys.readouterr().out
    assert code == 0
    assert "ctree" in out


def test_compare_lists_all_protocols(capsys):
    code = main(["compare", "--nodes", "15", "--settle", "10"])
    out = capsys.readouterr().out
    assert code == 0
    for protocol in ("quorum", "manetconf", "buddy", "ctree", "dad",
                     "weakdad"):
        assert protocol in out


def test_figure_table1(capsys):
    code = main(["figure", "table1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "CH_REQ" in out and "QUORUM_CLT" in out


def test_layout_draws_map(capsys):
    code = main(["layout", "--nodes", "30"])
    out = capsys.readouterr().out
    assert code == 0
    assert "H" in out and "cluster head" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_invalid_protocol_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--protocol", "pigeon"])


def test_sweep_runs_grid_and_reports_stats(capsys, tmp_path):
    argv = ["sweep", "--protocols", "quorum", "dad", "--nodes", "12",
            "--seeds", "1", "--speed", "0", "--settle", "5",
            "--workers", "1", "--cache", str(tmp_path)]
    code = main(argv)
    out = capsys.readouterr().out
    assert code == 0
    assert "quorum" in out and "dad" in out
    assert "executed=2" in out and "cache_hits=0" in out

    code = main(argv)  # second invocation: everything cached
    out = capsys.readouterr().out
    assert code == 0
    assert "executed=0" in out and "cache_hits=2" in out
    assert "(100 % cached)" in out


def test_run_with_faults_reports_fault_activity(capsys):
    from repro.experiments.builder import ScenarioBuilder

    code = main(["run", "--nodes", "15", "--settle", "10",
                 "--faults", "loss=0.3,crash=3@10-30"])
    out = capsys.readouterr().out
    assert code == 0
    assert "event: fault_crashes" in out
    # main() must not leak the --faults default into library callers.
    assert ScenarioBuilder.default_faults() is None


def test_bad_faults_spec_raises_named_error():
    with pytest.raises(ValueError, match="unknown fault spec key"):
        main(["run", "--nodes", "10", "--faults", "chaos=1"])


def test_sweep_fault_specs_get_distinct_cache_keys(capsys, tmp_path):
    base = ["sweep", "--protocols", "dad", "--nodes", "10",
            "--seeds", "1", "--speed", "0", "--settle", "5",
            "--workers", "1", "--cache", str(tmp_path)]
    assert main(base + ["--faults", "loss=0.1"]) == 0
    out = capsys.readouterr().out
    assert "executed=1" in out

    assert main(base + ["--faults", "loss=0.1"]) == 0
    out = capsys.readouterr().out
    assert "cache_hits=1" in out and "(100 % cached)" in out

    # A different (or absent) fault spec is a different cell.
    assert main(base) == 0
    out = capsys.readouterr().out
    assert "executed=1" in out and "cache_hits=0" in out


def test_figure_accepts_workers_and_cache(capsys, tmp_path):
    from repro.experiments.sweep import set_default_executor
    try:
        code = main(["figure", "fig05", "--seeds", "1",
                     "--workers", "1", "--cache", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 5" in out
        assert list(tmp_path.glob("*.json"))  # runs were cached
    finally:
        set_default_executor(None)


def test_trace_renders_span_trees(capsys):
    code = main(["trace", "--nodes", "15", "--seed", "1", "--settle", "10"])
    out = capsys.readouterr().out
    assert code == 0
    assert "span corr=1" in out
    assert "outcome=completed" in out
    assert "spans:" in out  # the trailing summary line


def test_trace_format_and_filter_flags(capsys):
    base = ["trace", "--nodes", "15", "--seed", "1", "--settle", "10"]
    assert main(base + ["--format", "summary"]) == 0
    summary = capsys.readouterr().out
    assert summary.startswith("spans:")

    assert main(base + ["--format", "timeline", "--etype",
                        "vote.decide"]) == 0
    timeline = capsys.readouterr().out
    lines = [l for l in timeline.splitlines() if l and "events)" not in l]
    assert lines and all("vote.decide" in l for l in lines)


def test_trace_jsonl_out_and_reload(capsys, tmp_path):
    out_file = tmp_path / "trace.jsonl"
    assert main(["trace", "--nodes", "15", "--seed", "1", "--settle", "10",
                 "--format", "jsonl", "--out", str(out_file)]) == 0
    capsys.readouterr()
    # The exported JSONL renders identically when loaded back in.
    assert main(["trace", "--in", str(out_file), "--format",
                 "summary"]) == 0
    reloaded = capsys.readouterr().out
    assert main(["trace", "--nodes", "15", "--seed", "1", "--settle", "10",
                 "--format", "summary"]) == 0
    assert capsys.readouterr().out == reloaded


def test_run_with_trace_reports_span_outcomes(capsys):
    from repro.experiments.builder import ScenarioBuilder

    code = main(["run", "--nodes", "15", "--settle", "10", "--trace"])
    out = capsys.readouterr().out
    assert code == 0
    assert "spans: completed" in out
    # main() must not leak the --trace default into library callers.
    assert ScenarioBuilder.default_trace() is False


def test_sweep_trace_out_forces_serial_and_collects_jsonl(
        capsys, tmp_path):
    from repro.obs import events_from_jsonl, trace_export_path

    out_file = tmp_path / "sweep.jsonl"
    code = main(["sweep", "--protocols", "quorum", "--nodes", "12",
                 "--seeds", "1", "--speed", "0", "--settle", "5",
                 "--workers", "4", "--trace-out", str(out_file)])
    captured = capsys.readouterr()
    assert code == 0
    assert "forces serial" in captured.err
    assert "spans:" in captured.out
    text = out_file.read_text()
    assert '"run"' in text.splitlines()[0]
    assert events_from_jsonl(text)
    assert trace_export_path() is None  # sink reset on exit


def test_traced_sweep_cells_cache_separately_from_untraced(
        capsys, tmp_path):
    base = ["sweep", "--protocols", "dad", "--nodes", "10",
            "--seeds", "1", "--speed", "0", "--settle", "5",
            "--workers", "1", "--cache", str(tmp_path)]
    assert main(base) == 0
    assert "executed=1" in capsys.readouterr().out

    # Tracing changes the cell key (results carry span aggregates)...
    assert main(base + ["--trace"]) == 0
    assert "executed=1" in capsys.readouterr().out

    # ...but untraced reruns still hit the original cache entry.
    assert main(base) == 0
    assert "cache_hits=1" in capsys.readouterr().out
