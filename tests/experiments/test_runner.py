"""Integration tests: the runner drives every protocol end to end."""

import pytest

from repro.experiments import Scenario, ScenarioRunner, run_scenario
from repro.experiments.runner import PROTOCOLS


def small(seed=1, **kw):
    kw.setdefault("num_nodes", 25)
    kw.setdefault("settle_time", 15.0)
    return Scenario.paper_default(seed=seed, **kw)


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_every_protocol_configures_most_nodes(protocol):
    result = run_scenario(small(), protocol=protocol)
    assert result.protocol == protocol
    assert result.configuration_success_rate() >= 0.8
    assert result.avg_config_latency_hops() >= 0


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        ScenarioRunner(small(), protocol="carrier-pigeon")


def test_quorum_uniqueness_on_default_scenario():
    result = run_scenario(small(num_nodes=60, seed=3))
    assert result.uniqueness_ok()


def test_departures_tracked():
    result = run_scenario(small(
        num_nodes=30, depart_fraction=0.5, abrupt_probability=0.4,
        settle_time=30.0, seed=2))
    total = result.graceful_departures + result.abrupt_departures
    assert total == 15
    assert len(result.deaths) == result.abrupt_departures
    assert len(result.graceful_ids) == result.graceful_departures


def test_runs_are_deterministic():
    a = run_scenario(small(seed=11))
    b = run_scenario(small(seed=11))
    assert a.stats_hops == b.stats_hops
    assert [o.ip for o in a.outcomes] == [o.ip for o in b.outcomes]
    assert a.avg_config_latency_hops() == b.avg_config_latency_hops()


def test_different_seeds_differ():
    a = run_scenario(small(seed=1))
    b = run_scenario(small(seed=2))
    assert [o.ip for o in a.outcomes] != [o.ip for o in b.outcomes] or (
        a.stats_hops != b.stats_hops)


def test_static_scenario_supported():
    result = run_scenario(small(speed_mps=0.0, seed=4))
    assert result.configuration_success_rate() >= 0.9


def test_hotspot_scenario_runs():
    result = run_scenario(small(
        num_nodes=20, hotspot=(500.0, 500.0), hotspot_radius=80.0, seed=5))
    assert result.configuration_success_rate() >= 0.9


def test_quorum_structure_metrics_populated():
    result = run_scenario(small(num_nodes=40, seed=6))
    assert result.head_count >= 1
    assert result.qdset_sizes
    assert result.avg_extension_ratio() >= 1.0
    assert result.ip_space_total > 0


def test_baseline_structure_metrics_empty():
    result = run_scenario(small(seed=1), protocol="manetconf")
    assert result.head_count == 0
    assert result.qdset_sizes == []
    assert result.avg_extension_ratio() == 1.0
