"""The per-figure experiments run and have the paper's shapes (tiny
parameterizations; the benchmarks run the full ranges)."""

import pytest

from repro.experiments import figures


def series_of(result):
    return result["series"]


def test_fig04_layout_structure():
    layout = figures.fig04_layout(num_nodes=30, seed=1)
    assert layout["area"] == (1000.0, 1000.0)
    assert layout["head_count"] >= 1
    roles = {n["role"] for n in layout["nodes"]}
    assert "head" in roles
    for node in layout["nodes"]:
        assert 0 <= node["x"] <= 1000 and 0 <= node["y"] <= 1000


def test_fig05_quorum_beats_manetconf():
    result = figures.fig05_latency_vs_size(sizes=(40, 80), seeds=(1,))
    s = series_of(result)
    assert s["quorum"][-1] < s["manetconf"][-1]


def test_fig06_runs_both_protocols():
    result = figures.fig06_latency_vs_range(
        ranges=(150.0, 250.0), num_nodes=40, seeds=(1,))
    s = series_of(result)
    assert len(s["quorum"]) == 2 and len(s["manetconf"]) == 2
    assert all(v > 0 for v in s["quorum"])


def test_fig07_grid_shape():
    result = figures.fig07_latency_grid(
        ranges=(150.0, 200.0), sizes=(30, 60), seeds=(1,))
    assert set(result["series"]) == {"tr=150", "tr=200"}
    assert all(len(v) == 2 for v in result["series"].values())


def test_fig08_quorum_cheaper_than_buddy():
    result = figures.fig08_config_overhead(sizes=(40, 80), seeds=(1,))
    s = series_of(result)
    for q, b in zip(s["quorum"], s["buddy"]):
        assert q < b
    # Buddy's periodic sync grows with network size.
    assert s["buddy"][1] > s["buddy"][0]


def test_fig09_quorum_cheaper_departures():
    result = figures.fig09_departure_overhead(sizes=(40, 80), seeds=(1,))
    s = series_of(result)
    assert s["quorum"][-1] < s["buddy"][-1]


def test_fig10_upon_leave_cheaper_than_periodic():
    result = figures.fig10_maintenance_overhead(sizes=(40,), seeds=(1,))
    s = series_of(result)
    assert s["quorum/upon-leave"][0] < s["quorum/periodic"][0]


def test_fig11_movement_grows_with_speed():
    result = figures.fig11_movement_vs_speed(
        speeds=(5.0, 40.0), num_nodes=60, seeds=(1,))
    s = series_of(result)
    assert s["quorum/periodic"][1] > s["quorum/periodic"][0]
    assert all(v == 0 for v in s["quorum/upon-leave"])


def test_fig12_extension_above_one_and_ctree_flat():
    result = figures.fig12_ip_space_extension(
        ranges=(150.0, 250.0), sizes=(60,), seeds=(1,))
    s = series_of(result)
    assert all(v == 1.0 for v in s["ctree (no replication)"])
    assert all(v > 1.0 for v in s["quorum nn=60"])


def test_fig13_quorum_preserves_most_state():
    result = figures.fig13_information_loss(
        abrupt_ratios=(0.1,), num_nodes=100, seeds=(1,))
    s = series_of(result)
    # Paper: >= 99 % preserved below a 30 % abrupt ratio (small-sample
    # tolerance here; the benchmark sweeps the full range).
    assert s["quorum"][0] <= 10.0


def test_fig14_produces_positive_costs():
    result = figures.fig14_reclamation_overhead(sizes=(60,), seeds=(1,))
    s = series_of(result)
    assert s["quorum"][0] >= 0
    assert s["ctree"][0] >= 0


def test_table1_message_exchange_matches_paper():
    outcome = figures.table1_message_exchange()
    assert outcome["observed"] == outcome["expected"]
    assert outcome["roles"].count("head") >= 3
