"""Unit tests for result export."""

import csv

from repro.experiments.export import (
    read_series_json,
    write_series_csv,
    write_series_json,
)


def sample_result():
    return {
        "title": "Fig. X",
        "xlabel": "nodes",
        "ylabel": "hops",
        "x": [50, 100],
        "series": {"quorum": [1.5, 2.5], "manetconf": [3.0, 4.0]},
        "series_std": {"quorum": [0.1, 0.2], "manetconf": [0.0, 0.0]},
    }


def test_csv_roundtrip(tmp_path):
    path = write_series_csv(sample_result(), tmp_path / "fig.csv")
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["nodes", "quorum", "manetconf",
                       "quorum (std)", "manetconf (std)"]
    assert rows[1] == ["50", "1.5", "3.0", "0.1", "0.0"]
    assert len(rows) == 3


def test_csv_without_std(tmp_path):
    result = sample_result()
    del result["series_std"]
    path = write_series_csv(result, tmp_path / "fig.csv")
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["nodes", "quorum", "manetconf"]


def test_json_roundtrip(tmp_path):
    result = sample_result()
    path = write_series_json(result, tmp_path / "fig.json")
    loaded = read_series_json(path)
    assert loaded["title"] == "Fig. X"
    assert loaded["x"] == [50, 100]
    assert loaded["series"]["quorum"] == [1.5, 2.5]
    assert loaded["series_std"]["quorum"] == [0.1, 0.2]


def test_exports_real_figure(tmp_path):
    from repro.experiments import figures
    result = figures.fig12_ip_space_extension(
        ranges=(150.0,), sizes=(30,), seeds=(1,))
    csv_path = write_series_csv(result, tmp_path / "fig12.csv")
    json_path = write_series_json(result, tmp_path / "fig12.json")
    assert csv_path.exists() and json_path.exists()
    loaded = read_series_json(json_path)
    assert loaded["x"] == [150.0]
