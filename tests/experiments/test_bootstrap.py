"""Bulk bootstrap: the batched stand-up must leave a live network."""

import pytest

from repro.core.config import ProtocolConfig
from repro.experiments.bootstrap import (
    HEADS_EVERY, bulk_configure, space_bits_for)
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net.context import NetworkContext
from repro.net.node import Node


def grid_nodes(n, spacing=100.0, per_row=10):
    return [Node(i, Stationary(Point((i % per_row) * spacing,
                                     (i // per_row) * spacing)))
            for i in range(n)]


def stand_up(n=60, heads_every=20, bits=None):
    ctx = NetworkContext.build(seed=3, transmission_range=150.0)
    cfg = ProtocolConfig(
        address_space_bits=(space_bits_for(n, heads_every)
                            if bits is None else bits))
    nodes = grid_nodes(n)
    return ctx, bulk_configure(ctx, cfg, nodes, heads_every=heads_every)


def test_space_bits_for_hosts_the_layout():
    for n in (1, 24, 25, 26, 100, 1000):
        bits = space_bits_for(n)
        cfg = ProtocolConfig(address_space_bits=bits)
        heads = max(1, -(-n // HEADS_EVERY))
        # Twice the mean cluster per head, head count rounded up to a
        # power of two, must fit the space exactly once.
        assert heads * 2 * HEADS_EVERY <= cfg.address_space_size


def test_bulk_configure_builds_one_network():
    ctx, setup = stand_up()
    assert setup.heads == [0, 20, 40]
    assert setup.founder == 0
    assert setup.spilled == 0
    networks = {agent.network_id for agent in setup.agents}
    assert networks == {setup.network_id}
    for agent in setup.agents:
        assert agent.is_configured()
    for head_id in setup.heads:
        assert ctx.is_head(head_id)


def test_bulk_configure_addresses_unique_and_bound():
    ctx, setup = stand_up()
    addresses = [agent.ip for agent in setup.agents]
    assert None not in addresses
    assert len(set(addresses)) == len(addresses)
    for agent in setup.agents:
        assert ctx.resolve_ip(agent.ip) == agent.node_id


def test_bulk_configure_heads_get_qdsets():
    _, setup = stand_up()
    heads = [a for a in setup.agents if a.node_id in set(setup.heads)]
    # On a connected 6x10 grid every head sees the adjacent heads.
    for agent in heads:
        assert agent.head is not None
        assert agent.head.qdset.members()


def test_bulk_configure_commons_point_at_their_head():
    _, setup = stand_up()
    head_set = set(setup.heads)
    for agent in setup.agents:
        if agent.node_id in head_set:
            continue
        assert agent.common is not None
        assert agent.common.configurer_id in head_set


def test_bulk_configure_rejects_too_small_space():
    with pytest.raises(ValueError, match="too small"):
        stand_up(n=60, heads_every=20, bits=5)


def test_bulk_configure_rejects_empty():
    ctx = NetworkContext.build(seed=1)
    with pytest.raises(ValueError, match="at least one node"):
        bulk_configure(ctx, ProtocolConfig(), [])


def test_bulk_configure_matches_component_queries():
    """The stood-up network must be visible through the label layer."""
    ctx, setup = stand_up()
    assert ctx.component_heads(setup.founder) == tuple(setup.heads)
    assert ctx.component_networks(setup.founder) == {setup.network_id}
