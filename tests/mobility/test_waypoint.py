"""Unit and property tests for random-waypoint mobility."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Region, distance
from repro.mobility import RandomWaypoint, Stationary


def make_model(speed=20.0, start_time=0.0, seed=1):
    return RandomWaypoint(
        Region(1000, 1000), Point(500, 500), speed,
        random.Random(seed), start_time=start_time,
    )


def test_position_before_start_is_origin():
    model = make_model(start_time=10.0)
    assert model.position(0.0) == Point(500, 500)
    assert model.position(10.0) == Point(500, 500)


def test_zero_speed_never_moves():
    model = make_model(speed=0.0)
    assert model.position(100.0) == Point(500, 500)


def test_speed_accessor():
    assert make_model(speed=20.0).speed() == 20.0
    assert Stationary(Point(0, 0)).speed() == 0.0


def test_positions_stay_in_region():
    model = make_model()
    region = Region(1000, 1000)
    for t in range(0, 500, 7):
        assert region.contains(model.position(float(t)))


def test_movement_respects_speed_limit():
    model = make_model(speed=20.0)
    prev = model.position(0.0)
    for step in range(1, 200):
        t = step * 0.5
        cur = model.position(t)
        assert distance(prev, cur) <= 20.0 * 0.5 + 1e-6
        prev = cur


def test_trajectory_is_deterministic():
    a = make_model(seed=5)
    b = make_model(seed=5)
    for t in (1.0, 10.0, 100.0):
        assert a.position(t) == b.position(t)


def test_non_monotone_queries_consistent():
    model = make_model()
    late = model.position(50.0)
    early = model.position(10.0)
    assert model.position(50.0) == late
    assert model.position(10.0) == early


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.5, max_value=50.0),
    st.floats(min_value=0.0, max_value=300.0),
)
def test_position_always_in_region(seed, speed, t):
    model = RandomWaypoint(
        Region(1000, 1000), Point(100, 900), speed,
        random.Random(seed),
    )
    p = model.position(t)
    assert 0 <= p.x <= 1000 and 0 <= p.y <= 1000


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=1.0, max_value=40.0),
)
def test_displacement_bounded_by_speed(seed, speed):
    model = RandomWaypoint(
        Region(1000, 1000), Point(500, 500), speed, random.Random(seed))
    p1 = model.position(10.0)
    p2 = model.position(14.0)
    assert distance(p1, p2) <= speed * 4.0 + 1e-6
