"""Unit tests for arrival/departure plan generation."""

import random

import pytest

from repro.geometry import Point, Region
from repro.mobility import build_plans


def make(num=20, **kw):
    return build_plans(num, Region(1000, 1000), random.Random(1), **kw)


def test_one_plan_per_node_with_increasing_times():
    plans = make(num=30)
    assert len(plans) == 30
    times = [p.arrival.time for p in plans]
    assert times == sorted(times)
    assert all(t > 0 for t in times)


def test_node_ids_sequential():
    plans = make(num=10)
    assert [p.arrival.node_id for p in plans] == list(range(10))


def test_no_departures_by_default():
    assert all(p.departure is None for p in make())


def test_depart_fraction_counts():
    plans = make(num=40, depart_fraction=0.5)
    departing = [p for p in plans if p.departure is not None]
    assert len(departing) == 20


def test_departures_after_last_arrival():
    plans = make(num=20, depart_fraction=1.0, depart_after=5.0,
                 depart_window=10.0)
    last_arrival = plans[-1].arrival.time
    for plan in plans:
        assert plan.departure is not None
        assert last_arrival + 5.0 <= plan.departure.time <= last_arrival + 15.0


def test_abrupt_probability_extremes():
    all_abrupt = make(num=30, depart_fraction=1.0, abrupt_probability=1.0)
    assert all(p.departure.abrupt for p in all_abrupt)
    none_abrupt = make(num=30, depart_fraction=1.0, abrupt_probability=0.0)
    assert not any(p.departure.abrupt for p in none_abrupt)


def test_hotspot_clusters_positions():
    hotspot = Point(200, 200)
    plans = build_plans(
        30, Region(1000, 1000), random.Random(2),
        hotspot=hotspot, hotspot_radius=50.0,
    )
    for plan in plans:
        assert abs(plan.arrival.position.x - 200) <= 50 + 1e-9
        assert abs(plan.arrival.position.y - 200) <= 50 + 1e-9


def test_positions_inside_region():
    region = Region(500, 300)
    plans = build_plans(50, region, random.Random(3))
    assert all(region.contains(p.arrival.position) for p in plans)


def test_invalid_fractions_raise():
    with pytest.raises(ValueError):
        make(depart_fraction=1.5)
    with pytest.raises(ValueError):
        make(depart_fraction=0.5, abrupt_probability=-0.1)


def test_deterministic_for_same_rng_seed():
    a = build_plans(20, Region(1000, 1000), random.Random(9),
                    depart_fraction=0.4, abrupt_probability=0.3)
    b = build_plans(20, Region(1000, 1000), random.Random(9),
                    depart_fraction=0.4, abrupt_probability=0.3)
    assert a == b
