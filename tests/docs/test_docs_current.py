"""The docs checker catches rot — and the live docs have none.

Fixture tests pin each failure mode (orphan doc, dead link, dead
anchor, stale code path); the final test runs the checker against the
real repository, which is the same gate CI's docs job applies.
"""

from pathlib import Path

from repro.lint.docs import _anchors_of, _github_slug, check_docs, main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def _fixture(tmp_path, readme: str, docs: dict) -> Path:
    _write(tmp_path, "README.md", readme)
    for name, text in docs.items():
        _write(tmp_path, f"docs/{name}", text)
    return tmp_path


def test_clean_fixture_has_no_findings(tmp_path):
    root = _fixture(
        tmp_path,
        "# Repo\n\nSee [arch](docs/ARCH.md#design) and `src/mod/a.py`.\n",
        {"ARCH.md": "# Arch\n\n## Design\n\nBack to [readme](../README.md).\n"},
    )
    _write(root, "src/mod/a.py", "")
    assert check_docs(root) == []


def test_orphan_doc_is_reported(tmp_path):
    root = _fixture(tmp_path, "# Repo\n", {"LOST.md": "# Lost\n"})
    findings = check_docs(root)
    assert any("docs/LOST.md is not linked" in f.message for f in findings)


def test_dead_relative_link_is_reported(tmp_path):
    root = _fixture(
        tmp_path,
        "# Repo\n\n[gone](docs/MISSING.md) [here](docs/REAL.md)\n",
        {"REAL.md": "# Real\n"},
    )
    findings = check_docs(root)
    assert any("broken link: docs/MISSING.md" in f.message for f in findings)
    assert not any("REAL" in f.message for f in findings)


def test_dead_anchor_is_reported_cross_file_and_intra_doc(tmp_path):
    root = _fixture(
        tmp_path,
        "# Repo\n\n[ok](docs/A.md#real-section) [bad](docs/A.md#no-such)\n",
        {"A.md": "# A\n\n## Real section\n\n[self](#also-missing)\n"},
    )
    messages = [f.message for f in check_docs(root)]
    assert any("#no-such" in m for m in messages)
    assert any("#also-missing" in m for m in messages)
    assert not any("real-section" in m for m in messages)


def test_stale_code_reference_is_reported(tmp_path):
    root = _fixture(
        tmp_path,
        "# Repo\n\nUses `src/mod/real.py` and `src/mod/ghost.py`.\n",
        {},
    )
    _write(root, "src/mod/real.py", "")
    findings = check_docs(root)
    assert any("`src/mod/ghost.py`" in f.message for f in findings)
    assert not any("real.py" in f.message for f in findings)


def test_code_reference_resolves_through_src_prefix(tmp_path):
    root = _fixture(tmp_path, "# Repo\n\nSee `repro/net/topology.py`.\n", {})
    _write(root, "src/repro/net/topology.py", "")
    assert check_docs(root) == []


def test_fenced_blocks_are_not_claims(tmp_path):
    root = _fixture(
        tmp_path,
        "# Repo\n\n```bash\ncat src/not/a/real/file.py\n"
        "# [fake](docs/NOPE.md)\n```\n",
        {},
    )
    assert check_docs(root) == []


def test_github_slugs_match_renderer_conventions():
    seen = {}
    assert _github_slug("Quick Start", seen) == "quick-start"
    assert _github_slug("The `repro bench` CLI", seen) == "the-repro-bench-cli"
    assert _github_slug("Quick Start", seen) == "quick-start-1"  # duplicate
    text = "# Top\n\n## A & B (c)\n"
    assert _anchors_of(text) == ["top", "a--b-c"]


def test_main_exit_codes(tmp_path, capsys):
    root = _fixture(tmp_path, "# Repo\n", {"LOST.md": "# Lost\n"})
    assert main([str(root)]) == 1
    _write(root, "README.md", "# Repo\n\n[found](docs/LOST.md)\n")
    assert main([str(root)]) == 0


def test_live_repo_docs_are_current():
    """The gate CI applies: this repository's own docs must be clean."""
    findings = check_docs(REPO_ROOT)
    assert findings == [], "\n".join(f.format() for f in findings)
