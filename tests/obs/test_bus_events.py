"""Event bus semantics and the typed event vocabulary."""

import dataclasses
import pickle

import pytest

from repro.obs import EventBus, events_from_jsonl, events_to_jsonl
from repro.obs import events as ev


def _vote(time=1.0, node=3, corr=7, **overrides):
    fields = dict(time=time, node=node, corr=corr, attempt=1, voter=4,
                  address=9, status="free", timestamp=2)
    fields.update(overrides)
    return ev.VoteReceived(**fields)


# --- bus -------------------------------------------------------------


def test_bus_is_falsy_without_subscribers():
    bus = EventBus()
    assert not bus
    assert not bus.enabled
    bus.subscribe(lambda e: None)
    assert bus
    assert bus.enabled


def test_emit_fans_out_in_subscribe_order():
    bus = EventBus()
    seen = []
    bus.subscribe(lambda e: seen.append(("a", e)))
    bus.subscribe(lambda e: seen.append(("b", e)))
    event = _vote()
    bus.emit(event)
    assert seen == [("a", event), ("b", event)]


def test_unsubscribe_silences_and_is_idempotent():
    bus = EventBus()
    seen = []
    sub = bus.subscribe(seen.append)
    bus.unsubscribe(sub)
    bus.unsubscribe(sub)  # no-op
    assert not bus
    bus.emit(_vote())
    assert seen == []


def test_correlation_ids_are_monotonic_from_one():
    bus = EventBus()
    assert [bus.new_correlation() for _ in range(4)] == [1, 2, 3, 4]


# --- events ----------------------------------------------------------


def test_every_event_type_is_frozen_and_slotted():
    for cls in ev.EVENT_TYPES.values():
        assert dataclasses.is_dataclass(cls)
        assert cls.__dataclass_params__.frozen, cls.__name__
        assert "__slots__" in cls.__dict__, cls.__name__


def test_events_are_immutable():
    event = _vote()
    with pytest.raises(dataclasses.FrozenInstanceError):
        event.status = "assigned"


def test_etype_registry_is_complete_and_unique():
    assert len(ev.EVENT_TYPES) == 18
    for etype, cls in ev.EVENT_TYPES.items():
        assert cls.etype == etype
    assert ev.TERMINAL_ETYPES <= set(ev.EVENT_TYPES)


def test_record_round_trip_every_type():
    samples = [
        ev.MessageSend(time=0.5, node=1, corr=2, mtype="COM_REQ",
                       kind="unicast", dst=4, hops=2, category="config",
                       delivered=True),
        _vote(),
        ev.VoteTimeout(time=3.0, node=1, corr=2, attempt=1, address=5,
                       responders=1, universe=3, missing=(7, 9)),
        ev.WriteBack(time=4.0, node=1, corr=2, owner=1, address=5,
                     status="assigned", timestamp=3, targets=(2, 7)),
        ev.PartitionEvent(time=5.0, node=8, corr=0, phase="rejoin",
                          network_id=None),
    ]
    for event in samples:
        restored = ev.from_record(ev.to_record(event))
        assert restored == event
        assert type(restored) is type(event)


def test_jsonl_round_trip_and_header_lines_skipped():
    events = [_vote(time=t) for t in (1.0, 2.0)]
    text = '{"run":{"seed":1}}\n' + events_to_jsonl(events)
    assert events_from_jsonl(text) == events


def test_jsonl_is_deterministic_bytes():
    events = [_vote(), ev.WriteBack(time=4.0, node=1, corr=2, owner=1,
                                    address=5, status="assigned",
                                    timestamp=3, targets=(2, 7))]
    assert events_to_jsonl(events) == events_to_jsonl(list(events))


def test_events_pickle_for_worker_transport():
    event = ev.VoteTimeout(time=3.0, node=1, corr=2, attempt=1, address=5,
                           responders=1, universe=3, missing=(7, 9))
    assert pickle.loads(pickle.dumps(event)) == event
