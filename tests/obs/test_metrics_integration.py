"""End-to-end metrics acceptance: real-run series, determinism,
cache-key neutrality and the JSONL export sink."""

import json

from repro.experiments.builder import ScenarioBuilder, paper_scenario
from repro.experiments.runner import ScenarioRunner
from repro.experiments.sweep import (
    RunSpec,
    SweepExecutor,
    SweepSummary,
    expand_grid,
)
from repro.obs import (
    merge_series,
    metrics_export_path,
    series_from_jsonl,
    set_metrics_export,
)
from repro.obs import metric_names as mn


def _metrics_run(num_nodes=25, seed=3, period=1.0, **overrides):
    overrides.setdefault("settle_time", 20.0)
    scenario = paper_scenario(num_nodes=num_nodes, seed=seed, metrics=True,
                              metrics_period=period, **overrides)
    return ScenarioRunner(scenario).run()


def test_series_cover_the_whole_run_and_show_the_ramp():
    result = _metrics_run()
    series = result.obs_metrics
    samples = len(series[mn.AGENTS_LIVE])
    # One sample per period from t=0 through the end of the run.
    assert samples >= int(result.duration)
    assert all(len(values) == samples for values in series.values())
    # Nodes arrive one per second: the live count ramps monotonically
    # up to the full population.
    live = series[mn.AGENTS_LIVE]
    assert live[0] == 0
    assert live[-1] == 25
    assert all(b >= a for a, b in zip(live, live[1:]))
    assert series[mn.AGENTS_CONFIGURED][-1] > 0
    assert max(series[mn.POOL_FREE]) > 0
    assert series[mn.COMPONENT_COUNT][-1] >= 0
    # Message-rate series are per-interval deltas of the cumulative
    # counters: their sums reach the run totals up to the handful of
    # messages delivered after the final sample tick.
    for category, total in result.stats_msgs.items():
        captured = sum(series[mn.msg_metric(category)])
        assert 0 <= captured <= total
        assert total - captured <= 5


def test_metrics_do_not_perturb_the_run():
    scenario_off = paper_scenario(num_nodes=25, seed=3, settle_time=20.0)
    scenario_on = paper_scenario(num_nodes=25, seed=3, settle_time=20.0,
                                 metrics=True)
    off = ScenarioRunner(scenario_off).run().to_dict()
    on = ScenarioRunner(scenario_on).run().to_dict()
    assert on.pop("obs_metrics", None)
    assert json.dumps(off, sort_keys=True) == json.dumps(on, sort_keys=True)


def test_identical_runs_produce_byte_identical_series():
    first = _metrics_run(num_nodes=20, seed=7)
    second = _metrics_run(num_nodes=20, seed=7)
    assert json.dumps(first.obs_metrics, sort_keys=True) == \
        json.dumps(second.obs_metrics, sort_keys=True)


def test_serial_and_parallel_metrics_sweeps_agree_exactly():
    scenarios = [
        paper_scenario(num_nodes=n, seed=s, settle_time=15.0, metrics=True)
        for n in (15, 20) for s in (1, 2)
    ]
    specs = expand_grid(["quorum"], scenarios)
    serial = SweepExecutor(workers=1).run(specs)
    parallel = SweepExecutor(workers=2).run(specs)
    for left, right in zip(serial.results, parallel.results):
        assert json.dumps(left.to_dict(), sort_keys=True) == \
            json.dumps(right.to_dict(), sort_keys=True)
        assert left.obs_metrics
    assert serial.obs_metric_totals() == parallel.obs_metric_totals()


def test_sweep_summary_folds_metrics_like_the_report():
    scenarios = [paper_scenario(num_nodes=12, seed=s, settle_time=5.0,
                                metrics=True) for s in (1, 2)]
    specs = expand_grid(["quorum"], scenarios)
    executor = SweepExecutor(workers=1)
    report = executor.run(specs)
    summary = SweepSummary()
    for cell in executor.stream(specs):
        summary.fold(cell)
    expected = {}
    for result in report.results:
        expected = merge_series(expected, result.obs_metrics)
    assert summary.obs_metric_totals() == expected
    assert report.obs_metric_totals() == expected
    assert summary.to_dict()["obs_metric_totals"] == expected


def test_cache_keys_unchanged_when_metrics_are_off():
    scenario = paper_scenario(num_nodes=20, seed=1)
    spec = RunSpec("quorum", scenario)
    payload = spec.to_dict()["scenario"]
    assert "metrics" not in payload
    assert "metrics_period" not in payload
    sampled = RunSpec("quorum", paper_scenario(num_nodes=20, seed=1,
                                               metrics=True))
    assert sampled.to_dict()["scenario"]["metrics"] is True
    assert spec.key() != sampled.key()
    # Different cadences cache separately too (the series differ).
    coarse = RunSpec("quorum", paper_scenario(num_nodes=20, seed=1,
                                              metrics=True,
                                              metrics_period=5.0))
    assert sampled.key() != coarse.key()


def test_builder_default_metrics_folds_into_built_scenarios():
    try:
        ScenarioBuilder.set_default_metrics(True, period=2.5)
        built = ScenarioBuilder().nodes(10).build()
        assert built.metrics is True
        assert built.metrics_period == 2.5
        explicit = ScenarioBuilder().nodes(10).metrics(False).build()
        assert explicit.metrics is False
    finally:
        ScenarioBuilder.set_default_metrics(False)
    assert ScenarioBuilder().nodes(10).build().metrics is False


def test_export_sink_collects_jsonl_per_run(tmp_path):
    out = tmp_path / "metrics.jsonl"
    try:
        set_metrics_export(str(out))
        result = _metrics_run(num_nodes=15, seed=2, settle_time=10.0)
    finally:
        set_metrics_export(None)
    assert metrics_export_path() is None
    blocks = series_from_jsonl(out.read_text())
    assert len(blocks) == 1
    header, series = blocks[0]
    assert header["seed"] == 2
    assert header["protocol"] == "quorum"
    assert series == result.obs_metrics
