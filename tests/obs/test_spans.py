"""Span reconstruction, phase latencies and fixed-bucket histograms."""

import pytest

from repro.obs import (
    BUCKET_EDGES,
    TraceRecorder,
    build_spans,
    merge_histograms,
    span_histograms,
    span_outcomes,
)
from repro.obs import events as ev
from repro.obs.bus import EventBus


def _transaction(corr=1, t0=10.0):
    """A complete common-address allocation, REQ -> votes -> write-back."""
    return [
        ev.AttemptStarted(time=t0, node=5, corr=corr, attempt=1,
                          kind="common", target=2),
        ev.ConfigRequested(time=t0 + 0.1, node=2, corr=corr, attempt=4,
                           requester=5, kind="common", address=9, owner=2),
        ev.VoteStarted(time=t0 + 0.1, node=2, corr=corr, attempt=4,
                       address=9, owner=2, universe=3, quorum="majority"),
        ev.VoteReceived(time=t0 + 0.1, node=2, corr=corr, attempt=4,
                        voter=2, address=9, status="free", timestamp=0),
        ev.VoteReceived(time=t0 + 0.3, node=2, corr=corr, attempt=4,
                        voter=7, address=9, status="free", timestamp=1),
        ev.VoteDecided(time=t0 + 0.3, node=2, corr=corr, attempt=4,
                       address=9, granted=True, deciding_ts=1,
                       responders=2, universe=3),
        ev.WriteBack(time=t0 + 0.4, node=2, corr=corr, owner=2, address=9,
                     status="assigned", timestamp=2, targets=(7, 8)),
        ev.ConfigCommitted(time=t0 + 0.4, node=2, corr=corr, attempt=4,
                           requester=5, address=9, kind="common",
                           borrowed=False, latency_hops=3),
        ev.ConfigCompleted(time=t0 + 0.6, node=5, corr=corr, address=9,
                           kind="common", latency_hops=3),
    ]


def test_complete_transaction_reconstructs_fully():
    (span,) = build_spans(_transaction())
    assert span.corr == 1
    assert span.outcome == "completed"
    assert span.kind == "common"
    assert span.requester == 5
    assert span.allocator == 2
    assert span.address == 9
    assert span.votes == 2
    assert span.deciding_ts == 1
    # Per-member verdicts carry status and timestamp.
    assert [(v.voter, v.status, v.timestamp)
            for v in span.vote_events()] == [(2, "free", 0), (7, "free", 1)]
    assert span.terminal().etype == "config.complete"


def test_phase_latencies_are_sim_time_deltas():
    (span,) = build_spans(_transaction(t0=10.0))
    assert span.phases["request"] == pytest.approx(0.1)
    assert span.phases["vote"] == pytest.approx(0.2)
    assert span.phases["write"] == pytest.approx(0.1)
    assert span.phases["total"] == pytest.approx(0.6)


def test_zero_corr_events_never_join_spans():
    events = _transaction() + [
        ev.QDSetChanged(time=20.0, node=2, corr=0, member=7, action="add",
                        size=3),
    ]
    spans = build_spans(events)
    assert len(spans) == 1
    assert len(spans[0].events) == len(_transaction())


def test_interleaved_transactions_separate_by_corr():
    events = sorted(_transaction(corr=1, t0=10.0)
                    + _transaction(corr=2, t0=10.2),
                    key=lambda e: e.time)
    spans = build_spans(events)
    assert [s.corr for s in spans] == [1, 2]
    assert all(s.outcome == "completed" for s in spans)


def test_vote_timeout_closes_span_as_timeout():
    t0 = 5.0
    events = _transaction(t0=t0)[:5] + [
        ev.VoteTimeout(time=t0 + 2.0, node=2, corr=1, attempt=4, address=9,
                       responders=1, universe=3, missing=(8,)),
    ]
    (span,) = build_spans(events)
    assert span.outcome == "timeout"
    assert span.terminal().missing == (8,)
    assert span.phases["vote"] == pytest.approx(1.9)


def test_abort_outranks_timeout_but_not_commit():
    base = _transaction()[:2]
    aborted = base + [ev.ConfigAborted(time=11.0, node=2, corr=1, attempt=4,
                                       requester=5, reason="dry")]
    assert build_spans(aborted)[0].outcome == "aborted"
    completed = aborted + [ev.ConfigCompleted(time=12.0, node=5, corr=1,
                                              address=9, kind="common",
                                              latency_hops=1)]
    assert build_spans(completed)[0].outcome == "completed"


def test_unterminated_span_stays_open():
    (span,) = build_spans(_transaction()[:4])
    assert span.outcome == "open"
    assert span.terminal() is None
    assert "total" not in span.phases


# --- histograms ------------------------------------------------------


def test_histograms_use_fixed_buckets():
    spans = build_spans(_transaction())
    histograms = span_histograms(spans)
    assert set(histograms) == {"request", "vote", "write", "total"}
    for counts in histograms.values():
        assert len(counts) == len(BUCKET_EDGES) + 1
        assert sum(counts) == 1
    # 0.1 lands in the second bucket (0.05 < v <= 0.1).
    assert histograms["request"][1] == 1


def test_overflow_bucket_catches_large_latencies():
    events = [
        _transaction()[0],
        ev.ConfigTimeout(time=10.0 + 99.0, node=5, corr=1, attempt=1),
    ]
    histograms = span_histograms(build_spans(events))
    assert histograms["total"][-1] == 1


def test_merge_histograms_is_elementwise_sum():
    a = {"total": [1, 0, 2]}
    b = {"total": [0, 1, 1], "vote": [3, 0, 0]}
    merged = merge_histograms(a, b)
    assert merged == {"total": [1, 1, 3], "vote": [3, 0, 0]}
    assert a == {"total": [1, 0, 2]}  # inputs untouched


def test_span_outcomes_tally_sorted():
    spans = build_spans(
        sorted(_transaction(corr=1) + _transaction(corr=2)[:2]
               + [ev.ConfigAborted(time=30.0, node=2, corr=3, attempt=1,
                                   requester=9, reason="dry")],
               key=lambda e: e.time))
    assert span_outcomes(spans) == {"aborted": 1, "completed": 1, "open": 1}


# --- recorder --------------------------------------------------------


def test_recorder_prefilters_and_counts_truncation():
    bus = EventBus()
    recorder = TraceRecorder(limit=2, etypes=("vote.receive",)).attach(bus)
    for event in _transaction():
        bus.emit(event)
    assert [e.etype for e in recorder.events] == ["vote.receive"] * 2
    assert recorder.truncated == 0
    bus.emit(ev.VoteReceived(time=99.0, node=2, corr=1, attempt=4, voter=8,
                             address=9, status="free", timestamp=5))
    assert len(recorder) == 2
    assert recorder.truncated == 1
    recorder.detach()


def test_recorder_filter_by_span_and_window():
    bus = EventBus()
    with TraceRecorder().attach(bus) as recorder:
        for event in sorted(_transaction(corr=1, t0=10.0)
                            + _transaction(corr=2, t0=50.0),
                            key=lambda e: e.time):
            bus.emit(event)
    assert {e.corr for e in recorder.filter(corr=2)} == {2}
    windowed = recorder.filter(since=50.0, until=50.2)
    assert windowed and all(50.0 <= e.time <= 50.2 for e in windowed)
