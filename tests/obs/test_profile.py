"""Unit and integration tests for the subsystem attribution profiler."""

import functools
import json

import pytest

from repro.net.context import NetworkContext
from repro.obs.profile import OTHER, SubsystemProfiler, package_of
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer, Timer


def _net_callback():
    """Module-level target so package_of sees tests' module path."""


def test_package_of_truncates_to_two_components():
    timer = Timer(Simulator(), _net_callback)
    assert package_of(timer._fire) == package_of(_net_callback)

    class Owner:
        def method(self):
            pass

    # A bound method is charged to its class's module.
    assert package_of(Owner().method) == package_of(_net_callback)


def test_package_of_unwraps_partials_and_timer_trampolines():
    sim = Simulator()
    base = package_of(_net_callback)
    assert package_of(functools.partial(_net_callback)) == base
    assert package_of(
        functools.partial(functools.partial(_net_callback))) == base
    assert package_of(Timer(sim, _net_callback)._fire) == base
    assert package_of(
        PeriodicTimer(sim, 1.0, _net_callback)._fire) == base
    # Partial wrapping a timer trampoline unwraps through both layers.
    assert package_of(
        functools.partial(Timer(sim, _net_callback)._fire)) == base


def test_package_of_buckets_unowned_callables_as_other():
    # Builtins resolve to their real (non-repro) module...
    assert package_of(len) == "builtins"
    assert package_of({}.get) == "builtins"

    class Unowned:
        __module__ = ""

        def __call__(self):
            pass

    # ...and callables with no module at all land in the OTHER bucket.
    assert package_of(Unowned()) == OTHER


def test_install_twice_raises_and_uninstall_is_idempotent():
    sim = Simulator()
    profiler = SubsystemProfiler().install(sim)
    with pytest.raises(RuntimeError):
        profiler.install(sim)
    profiler.uninstall()
    profiler.uninstall()
    profiler.install(sim)
    profiler.uninstall()


def test_events_are_charged_to_the_owning_package():
    sim = Simulator()
    profiler = SubsystemProfiler().install(sim)
    sim.schedule(1.0, _net_callback)
    Timer(sim, _net_callback).start(2.0)
    sim.run(until=3.0)
    profiler.uninstall()
    packages = profiler.packages()
    bucket = package_of(_net_callback)
    # The timer-fired event is charged to the callback's package, not
    # to the repro.sim trampoline.
    assert packages[bucket]["events"] == 2
    assert packages[bucket]["wall_s"] >= 0.0


def test_phase_nesting_separates_self_from_total():
    profiler = SubsystemProfiler()
    with profiler.phase("outer"):
        with profiler.phase("inner"):
            sum(range(10_000))
    report = profiler.report()
    outer = report["phases"]["outer"]
    inner = report["phases"]["inner"]
    assert outer["calls"] == 1 and inner["calls"] == 1
    assert outer["total_s"] >= inner["total_s"]
    # Outer self time excludes the nested bracket.
    assert outer["self_s"] <= outer["total_s"] - inner["total_s"] + 1e-6
    assert inner["self_s"] == pytest.approx(inner["total_s"])


def test_phase_package_deltas_cover_only_bracketed_events():
    sim = Simulator()
    profiler = SubsystemProfiler().install(sim)
    sim.schedule_at(1.0, _net_callback)
    with profiler.phase("first"):
        sim.run(until=1.5)
    sim.schedule_at(2.0, _net_callback)
    sim.schedule_at(2.5, _net_callback)
    with profiler.phase("second"):
        sim.run(until=3.0)
    profiler.uninstall()
    phases = profiler.report()["phases"]
    bucket = package_of(_net_callback)
    assert phases["first"]["packages"][bucket]["events"] == 1
    assert phases["second"]["packages"][bucket]["events"] == 2


def test_repeated_phases_accumulate_under_one_name():
    profiler = SubsystemProfiler()
    for _ in range(3):
        with profiler.phase("loop"):
            pass
    assert profiler.report()["phases"]["loop"]["calls"] == 3


def test_profiled_run_fires_identical_events_in_identical_order():
    def drive(profiled):
        sim = Simulator()
        order = []
        profiler = SubsystemProfiler().install(sim) if profiled else None
        for i in range(20):
            sim.schedule(float((i * 7) % 5) + 0.01 * i,
                         lambda i=i: order.append(i))
        ticker = PeriodicTimer(sim, 1.0, lambda: order.append("tick"))
        ticker.start()
        fired = sim.run(until=6.0)
        if profiler is not None:
            profiler.uninstall()
        return order, fired, sim.now

    assert drive(False) == drive(True)


def test_memory_by_package_requires_active_tracing():
    profiler = SubsystemProfiler()
    assert profiler.memory_by_package() == {}
    profiler.start_memory()
    try:
        ctx = NetworkContext.build(seed=1)
        ctx.sim.run(until=5.0)
        by_package = profiler.memory_by_package()
    finally:
        profiler.stop_memory()
    assert by_package
    assert any(name.startswith("repro.") for name in by_package)
    assert all(size >= 0 for size in by_package.values())
    assert profiler.memory_by_package() == {}


def test_report_is_json_serializable():
    sim = Simulator()
    profiler = SubsystemProfiler().install(sim)
    sim.schedule(0.5, _net_callback)
    with profiler.phase("only"):
        sim.run(until=1.0)
    profiler.uninstall()
    payload = profiler.report()
    assert set(payload) == {"packages", "phases"}
    restored = json.loads(json.dumps(payload))
    assert restored["phases"]["only"]["calls"] == 1
