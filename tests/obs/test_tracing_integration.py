"""End-to-end tracing acceptance: spans from real runs, determinism,
cache-key neutrality and the JSONL export sink."""

import json

from repro.experiments.builder import ScenarioBuilder, paper_scenario
from repro.experiments.runner import ScenarioRunner
from repro.experiments.sweep import RunSpec, SweepExecutor, expand_grid
from repro.faults import FaultSpec
from repro.obs import (
    build_spans,
    events_from_jsonl,
    set_trace_export,
    trace_export_path,
)
from repro.obs import events as ev
from repro.quorum.voting import half_of, majority_threshold


def _traced_run(num_nodes=25, seed=3, **overrides):
    scenario = paper_scenario(num_nodes=num_nodes, seed=seed,
                              settle_time=20.0, trace=True, **overrides)
    runner = ScenarioRunner(scenario)
    result = runner.run()
    assert runner.recorder is not None
    return runner, result


def test_every_successful_allocation_is_a_complete_span():
    runner, result = _traced_run()
    spans = build_spans(runner.recorder.events)
    completed = [s for s in spans if s.outcome == "completed"]
    assert completed, "scenario produced no successful allocations"
    voted = 0
    for span in completed:
        assert span.requester is not None
        assert span.address is not None
        assert span.terminal().etype == "config.complete"
        starts = [e for e in span.events if isinstance(e, ev.VoteStarted)]
        if not starts:
            continue  # "first" spans (network founding) never vote
        voted += 1
        # The quorum condition: a majority of the voting universe — or
        # a distinguished half-set under linear voting (Section II-D) —
        # answered, each verdict carrying status + timestamp.
        start = starts[-1]
        needed = (half_of(start.universe) if start.quorum == "linear"
                  else majority_threshold(start.universe))
        votes = span.vote_events()
        assert len(votes) >= max(1, needed)
        for vote in votes:
            assert vote.status in ("free", "assigned")
            assert vote.timestamp >= 0
        decided = [e for e in span.events if isinstance(e, ev.VoteDecided)]
        assert decided and decided[-1].granted
        assert span.deciding_ts == decided[-1].deciding_ts
        # ...and the decided record was written back to the replicas.
        assert any(isinstance(e, ev.WriteBack) for e in span.events)
    assert voted, "no completed span went through a quorum vote"


def test_failed_attempts_terminate_explicitly_under_faults():
    runner, result = _traced_run(num_nodes=30, seed=5,
                                 faults=FaultSpec(loss_rate=0.25))
    spans = build_spans(runner.recorder.events)
    failed = [s for s in spans if s.outcome in ("aborted", "timeout")]
    assert failed, "lossy run produced no failed attempts"
    for span in failed:
        terminal = span.terminal()
        assert terminal is not None
        assert terminal.etype in ("config.abort", "config.timeout",
                                  "vote.timeout")
    # Only the simulation horizon may leave a span open.
    horizon = runner.recorder.events[-1].time
    for span in spans:
        if span.outcome == "open":
            assert span.ended_at <= horizon


def test_identical_runs_emit_byte_identical_streams():
    first, _ = _traced_run(num_nodes=20, seed=7)
    second, _ = _traced_run(num_nodes=20, seed=7)
    assert first.recorder.to_jsonl() == second.recorder.to_jsonl()


def test_run_result_aggregates_histograms_and_outcomes():
    _, result = _traced_run()
    assert result.obs_spans.get("completed", 0) > 0
    assert "total" in result.obs_histograms
    assert sum(result.obs_histograms["total"]) == sum(
        result.obs_spans.values()) - result.obs_spans.get("open", 0)


def test_tracing_does_not_perturb_the_run():
    scenario_off = paper_scenario(num_nodes=25, seed=3, settle_time=20.0)
    scenario_on = paper_scenario(num_nodes=25, seed=3, settle_time=20.0,
                                 trace=True)
    off = ScenarioRunner(scenario_off).run().to_dict()
    on = ScenarioRunner(scenario_on).run().to_dict()
    on.pop("obs_histograms", None)
    on.pop("obs_spans", None)
    assert json.dumps(off, sort_keys=True) == json.dumps(on, sort_keys=True)


def test_serial_and_parallel_traced_sweeps_agree_exactly():
    scenarios = [
        paper_scenario(num_nodes=n, seed=s, settle_time=15.0, trace=True,
                       faults=FaultSpec(loss_rate=0.1))
        for n in (15, 20) for s in (1, 2)
    ]
    specs = expand_grid(["quorum"], scenarios)
    serial = SweepExecutor(workers=1).run(specs)
    parallel = SweepExecutor(workers=2).run(specs)
    for left, right in zip(serial.results, parallel.results):
        assert json.dumps(left.to_dict(), sort_keys=True) == \
            json.dumps(right.to_dict(), sort_keys=True)
    assert serial.obs_span_totals() == parallel.obs_span_totals()
    assert serial.obs_histogram_totals() == parallel.obs_histogram_totals()


def test_cache_keys_unchanged_when_tracing_is_off():
    scenario = paper_scenario(num_nodes=20, seed=1)
    spec = RunSpec("quorum", scenario)
    assert "trace" not in spec.to_dict()["scenario"]
    # The key matches the hash of the pre-observability spec layout.
    traced = RunSpec("quorum", paper_scenario(num_nodes=20, seed=1,
                                              trace=True))
    assert traced.to_dict()["scenario"]["trace"] is True
    assert spec.key() != traced.key()


def test_builder_default_trace_folds_into_built_scenarios():
    try:
        ScenarioBuilder.set_default_trace(True)
        assert ScenarioBuilder().nodes(10).build().trace is True
        assert ScenarioBuilder().nodes(10).trace(False).build().trace is False
    finally:
        ScenarioBuilder.set_default_trace(False)
    assert ScenarioBuilder().nodes(10).build().trace is False


def test_export_sink_collects_jsonl_per_run(tmp_path):
    out = tmp_path / "trace.jsonl"
    try:
        set_trace_export(str(out))
        runner, _ = _traced_run(num_nodes=15, seed=2)
    finally:
        set_trace_export(None)
    assert trace_export_path() is None
    text = out.read_text()
    header = json.loads(text.splitlines()[0])
    assert header["run"]["seed"] == 2
    assert header["run"]["events"] == len(runner.recorder)
    assert events_from_jsonl(text) == runner.recorder.events
