"""Unit tests for the run-level metrics recorder and its serializers."""

import pytest

from repro.net.context import NetworkContext
from repro.obs import metric_names as mn
from repro.obs.metrics import (
    MetricsRecorder,
    merge_series,
    series_from_jsonl,
    series_to_csv,
    series_to_jsonl,
)


def test_period_must_be_positive():
    with pytest.raises(ValueError):
        MetricsRecorder(period=0.0)
    with pytest.raises(ValueError):
        MetricsRecorder(period=-1.0)


def test_attach_samples_on_the_sim_cadence():
    ctx = NetworkContext.build(seed=1)
    recorder = MetricsRecorder(period=2.0).attach(ctx)
    ctx.sim.run(until=4.0)
    # Samples at t = 0, 2, 4.
    assert recorder.samples == 3
    assert len(recorder) == 3
    series = recorder.series()
    assert series[mn.AGENTS_LIVE] == [0, 0, 0]
    assert all(len(values) == 3 for values in series.values())


def test_attach_twice_raises():
    ctx = NetworkContext.build(seed=1)
    recorder = MetricsRecorder().attach(ctx)
    with pytest.raises(RuntimeError):
        recorder.attach(ctx)


def test_detach_stops_sampling_but_keeps_series():
    ctx = NetworkContext.build(seed=1)
    recorder = MetricsRecorder(period=1.0).attach(ctx)
    ctx.sim.run(until=2.0)
    taken = recorder.samples
    recorder.detach()
    ctx.sim.run(until=6.0)
    assert recorder.samples == taken
    assert recorder.series()[mn.HEAP_SIZE][0] >= 0


def test_late_series_are_zero_padded_to_t0():
    recorder = MetricsRecorder()
    recorder._samples = 1
    recorder.record("early", 5)
    recorder._samples = 2
    recorder.record("early", 6)
    recorder.record("late", 7)  # first seen on tick 2
    series = recorder.series()
    assert series["early"] == [5, 6]
    assert series["late"] == [0, 7]


def test_series_output_is_name_sorted_and_copied():
    recorder = MetricsRecorder()
    recorder._samples = 1
    recorder.record("zz", 1)
    recorder.record("aa", 2)
    series = recorder.series()
    assert list(series) == ["aa", "zz"]
    series["aa"].append(99)
    assert recorder.series()["aa"] == [2]


def test_merge_series_sums_elementwise_and_extends_ragged_tails():
    base = {"a": [1, 2], "b": [3]}
    extra = {"a": [10], "b": [0, 5, 7], "c": [1]}
    merged = merge_series(base, extra)
    assert merged == {"a": [11, 2], "b": [3, 5, 7], "c": [1]}
    # Inputs are not mutated.
    assert base == {"a": [1, 2], "b": [3]}
    assert extra == {"a": [10], "b": [0, 5, 7], "c": [1]}


def test_merge_series_is_associative_over_a_fixed_order():
    runs = [{"x": [1, 2]}, {"x": [3], "y": [4]}, {"y": [5, 6, 7]}]
    left = merge_series(merge_series(runs[0], runs[1]), runs[2])
    right = merge_series(runs[0], merge_series(runs[1], runs[2]))
    assert left == right


def test_jsonl_round_trip_preserves_header_and_series():
    series = {"b": [1, 2, 3], "a": [0, 1, 0]}
    text = series_to_jsonl(series, 0.5, meta={"seed": 7})
    blocks = series_from_jsonl(text)
    assert len(blocks) == 1
    header, restored = blocks[0]
    assert header["period"] == 0.5
    assert header["samples"] == 3
    assert header["seed"] == 7
    assert restored == series


def test_jsonl_concatenated_blocks_parse_as_separate_runs():
    text = (series_to_jsonl({"a": [1]}, 1.0, meta={"seed": 1})
            + series_to_jsonl({"a": [2]}, 1.0, meta={"seed": 2}))
    blocks = series_from_jsonl(text)
    assert [h["seed"] for h, _ in blocks] == [1, 2]
    assert [s["a"] for _, s in blocks] == [[1], [2]]


def test_jsonl_metric_line_before_header_is_an_error():
    with pytest.raises(ValueError):
        series_from_jsonl('{"name":"a","values":[1]}\n')


def test_csv_is_wide_with_a_time_column():
    text = series_to_csv({"b": [1, 2], "a": [3]}, 0.5)
    lines = text.strip().splitlines()
    assert lines[0] == "time,a,b"
    assert lines[1] == "0,3,1"
    # Short series read as zero past their end.
    assert lines[2] == "0.5,0,2"


def test_registry_helpers_build_family_names():
    assert mn.role_metric("head") == "role_head"
    assert mn.role_metric(None) == "role_none"
    assert mn.msg_metric("config") == "msgs_config"
    assert mn.drop_metric("hello") == "drops_hello"
    assert mn.AGENTS_LIVE in mn.ALL_METRICS
