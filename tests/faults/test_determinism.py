"""Determinism and cache-safety guarantees of fault injection.

The acceptance bar for the fault layer:

* same seed + same fault spec => byte-identical results, serial or
  parallel (the sweep cache stays sound under fault-injected sweeps);
* a null fault spec behaves exactly like running with no fault model at
  all, and hashes to the same sweep-cache key — so the entire pre-fault
  corpus of cached runs stays valid.
"""

import json

from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenario import Scenario
from repro.experiments.sweep import RunSpec, SweepExecutor
from repro.faults import FaultSpec, crash_schedule


def small_scenario(faults=None, seed=3):
    return Scenario(
        num_nodes=14, seed=seed, depart_fraction=0.3,
        abrupt_probability=0.5, depart_window=10.0, settle_time=20.0,
        faults=faults,
    )


def faulty_spec(seed=3):
    return FaultSpec(
        loss_rate=0.15,
        extra_delay=0.01,
        jitter=0.005,
        crashes=crash_schedule(14, 0.2, at=20.0, window=5.0,
                               downtime=15.0, seed=seed),
    )


def payload(result):
    return json.dumps(result.to_dict(), sort_keys=True)


def test_same_seed_same_spec_byte_identical():
    a = ScenarioRunner(small_scenario(faulty_spec()), "quorum").run()
    b = ScenarioRunner(small_scenario(faulty_spec()), "quorum").run()
    assert payload(a) == payload(b)


def test_serial_and_parallel_sweeps_byte_identical():
    specs = [
        RunSpec(protocol=proto, scenario=small_scenario(faulty_spec(s), s))
        for proto in ("quorum", "manetconf") for s in (1, 2)
    ]
    serial = SweepExecutor(workers=1).run(specs).results
    parallel = SweepExecutor(workers=2).run(specs).results
    assert [payload(r) for r in serial] == [payload(r) for r in parallel]


def test_null_spec_identical_to_no_fault_model():
    plain = ScenarioRunner(small_scenario(None), "quorum").run()
    null = ScenarioRunner(small_scenario(FaultSpec()), "quorum").run()
    assert payload(plain) == payload(null)


def test_loss_zero_spec_identical_to_no_faults():
    # loss_rate=0 with no other fault either: the model is consulted
    # but never acts, and never advances any RNG stream.
    plain = ScenarioRunner(small_scenario(None), "manetconf").run()
    zero = ScenarioRunner(
        small_scenario(FaultSpec(loss_rate=0.0)), "manetconf").run()
    assert payload(plain) == payload(zero)


def test_cache_key_unchanged_by_null_faults():
    # Pre-fault-layer scenarios serialized without a "faults" entry;
    # fault-free specs must keep hashing to those keys.
    bare = RunSpec(protocol="quorum", scenario=small_scenario(None))
    null = RunSpec(protocol="quorum", scenario=small_scenario(FaultSpec()))
    assert "faults" not in bare.to_dict()["scenario"]
    assert bare.key() == null.key()


def test_cache_key_depends_on_fault_spec():
    bare = RunSpec(protocol="quorum", scenario=small_scenario(None))
    lossy = RunSpec(protocol="quorum",
                    scenario=small_scenario(FaultSpec(loss_rate=0.1)))
    lossier = RunSpec(protocol="quorum",
                      scenario=small_scenario(FaultSpec(loss_rate=0.2)))
    assert len({bare.key(), lossy.key(), lossier.key()}) == 3


def test_fault_results_round_trip_through_cache_format(tmp_path):
    from repro.experiments.sweep import RunCache

    spec = RunSpec(protocol="quorum",
                   scenario=small_scenario(faulty_spec()))
    result = ScenarioRunner(spec.scenario, "quorum").run()
    assert result.events.get("fault_crashes", 0) > 0
    cache = RunCache(tmp_path)
    cache.put(spec, result)
    restored = cache.get(spec)
    assert restored is not None
    assert payload(restored) == payload(result)


def test_pre_fault_cache_entries_still_load(tmp_path):
    """An old cache entry (no stats_drops/events keys) deserializes."""
    from repro.experiments.metrics import RunResult
    from repro.experiments.sweep import RunCache

    spec = RunSpec(protocol="quorum", scenario=small_scenario(None))
    result = ScenarioRunner(spec.scenario, "quorum").run()
    old_payload = result.to_dict()
    # No fault model ran, so no drops key is shipped ("events" may
    # still appear: quorum self-repair fires under plain abrupt
    # departures too).  Simulate a pre-fault-layer cache entry by
    # stripping both keys; from_dict must default them to empty.
    assert "stats_drops" not in old_payload
    old_payload.pop("events", None)
    restored = RunResult.from_dict(json.loads(json.dumps(old_payload)))
    assert restored.stats_drops == {}
    assert restored.events == {}
    cache = RunCache(tmp_path)
    cache.put(spec, result)
    assert cache.get(spec) is not None
