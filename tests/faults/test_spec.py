"""Unit tests for fault spec values, parsing and schedule helpers."""

import dataclasses

import pytest

from repro.faults import CrashEvent, FaultSpec, PartitionEvent, crash_schedule


def test_default_spec_is_null():
    assert FaultSpec().is_null()


def test_any_fault_makes_spec_non_null():
    assert not FaultSpec(loss_rate=0.1).is_null()
    assert not FaultSpec(extra_delay=0.5).is_null()
    assert not FaultSpec(jitter=0.1).is_null()
    assert not FaultSpec(link_churn_rate=0.05).is_null()
    assert not FaultSpec(crashes=(CrashEvent(1, 10.0, None),)).is_null()
    assert not FaultSpec(
        partitions=(PartitionEvent((1, 2), 5.0, 10.0),)).is_null()


def test_spec_validation_names_field():
    with pytest.raises(ValueError, match="loss_rate"):
        FaultSpec(loss_rate=1.0)
    with pytest.raises(ValueError, match="extra_delay"):
        FaultSpec(extra_delay=-1.0)
    with pytest.raises(ValueError, match="link_churn_period"):
        FaultSpec(link_churn_rate=0.1, link_churn_period=0.0)


def test_crash_event_validation():
    with pytest.raises(ValueError):
        CrashEvent(node_id=1, at=-1.0, restart_at=None)
    with pytest.raises(ValueError):
        CrashEvent(node_id=1, at=10.0, restart_at=5.0)


def test_partition_event_validation():
    with pytest.raises(ValueError):
        PartitionEvent(group=(), at=1.0, heal_at=2.0)
    with pytest.raises(ValueError):
        PartitionEvent(group=(1,), at=5.0, heal_at=5.0)


def test_spec_is_hashable_and_frozen():
    spec = FaultSpec(loss_rate=0.1, crashes=(CrashEvent(1, 2.0, 5.0),))
    assert hash(spec) == hash(
        FaultSpec(loss_rate=0.1, crashes=(CrashEvent(1, 2.0, 5.0),)))
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.loss_rate = 0.2


# ---------------------------------------------------------------------------
# CLI spec-string parsing
# ---------------------------------------------------------------------------
def test_parse_scalars():
    spec = FaultSpec.parse("loss=0.1,delay=0.02,jitter=0.01,churn=0.05,"
                           "churn_period=20")
    assert spec.loss_rate == 0.1
    assert spec.extra_delay == 0.02
    assert spec.jitter == 0.01
    assert spec.link_churn_rate == 0.05
    assert spec.link_churn_period == 20.0


def test_parse_crash_and_cut():
    spec = FaultSpec.parse("crash=7@40,crash=9@30-60,cut=1+2+3@50-80")
    assert spec.crashes == (
        CrashEvent(node_id=7, at=40.0, restart_at=None),
        CrashEvent(node_id=9, at=30.0, restart_at=60.0),
    )
    assert spec.partitions == (
        PartitionEvent(group=(1, 2, 3), at=50.0, heal_at=80.0),
    )


def test_parse_empty_items_and_spaces_tolerated():
    assert FaultSpec.parse(" loss=0.1 , ,delay=0.5 ") == FaultSpec(
        loss_rate=0.1, extra_delay=0.5)


def test_parse_rejects_unknown_key():
    with pytest.raises(ValueError, match="unknown fault spec key"):
        FaultSpec.parse("chaos=1.0")


def test_parse_rejects_malformed_items():
    with pytest.raises(ValueError):
        FaultSpec.parse("loss")
    with pytest.raises(ValueError, match="bad crash spec"):
        FaultSpec.parse("crash=abc")
    with pytest.raises(ValueError, match="bad cut spec"):
        FaultSpec.parse("cut=1+x@2-3")


# ---------------------------------------------------------------------------
# crash_schedule
# ---------------------------------------------------------------------------
def test_crash_schedule_is_deterministic():
    a = crash_schedule(50, 0.2, at=40.0, seed=7)
    b = crash_schedule(50, 0.2, at=40.0, seed=7)
    assert a == b
    assert len(a) == 10
    assert all(40.0 <= e.at < 60.0 for e in a)
    assert all(e.restart_at == e.at + 30.0 for e in a)


def test_crash_schedule_seed_changes_victims():
    a = {e.node_id for e in crash_schedule(50, 0.2, at=40.0, seed=1)}
    b = {e.node_id for e in crash_schedule(50, 0.2, at=40.0, seed=2)}
    assert a != b


def test_crash_schedule_no_restart():
    events = crash_schedule(10, 0.5, at=10.0, downtime=None, seed=3)
    assert len(events) == 5
    assert all(e.restart_at is None for e in events)


def test_crash_schedule_rejects_bad_fraction():
    with pytest.raises(ValueError):
        crash_schedule(10, 1.5, at=0.0)
