"""Behavioral tests for the runtime fault model wired into a transport."""

from repro.faults import CrashEvent, FaultSpec, PartitionEvent
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net import Category, Message, Node, Scope
from repro.net.context import NetworkContext


class Recorder:
    def __init__(self):
        self.received = []

    def on_message(self, msg):
        self.received.append((msg.mtype, msg.hops))


def make_net(faults=None, count=4, seed=1):
    """A ``count``-node chain, 1 hop per link at tr = 150 m."""
    ctx = NetworkContext.build(seed=seed, transmission_range=150.0,
                               faults=faults)
    nodes = []
    for i in range(count):
        node = Node(i, Stationary(Point(100 + 120 * i, 500)))
        node.agent = Recorder()
        ctx.topology.add_node(node)
        nodes.append(node)
    return ctx, nodes


def test_certain_loss_is_silent_and_charges_partial_route():
    ctx, nodes = make_net(FaultSpec(loss_rate=0.999999))
    outcome = ctx.transport.send(nodes[0], nodes[3], Message("PING", 0, 3),
                                 category=Category.CONFIG)
    ctx.sim.run()
    # Silent drop: the sender saw a successful transmission.
    assert outcome.ok
    assert outcome.dropped == 1
    assert not outcome.delivered
    assert nodes[3].agent.received == []
    # The partial route (first hop, where the loss struck) is charged.
    hops, _msgs = ctx.stats.snapshot()["config"]
    assert hops == outcome.cost_hops == 1
    assert ctx.stats.drops_snapshot() == {"config": 1}


def test_unreachable_destination_still_fails_fast():
    ctx, nodes = make_net(FaultSpec(loss_rate=0.5))
    nodes[3].kill()
    ctx.topology.invalidate()
    outcome = ctx.transport.send(nodes[0], nodes[3], Message("PING", 0, 3),
                                 category=Category.CONFIG)
    assert not outcome.ok


def test_crash_and_restart_flip_liveness():
    spec = FaultSpec(crashes=(CrashEvent(node_id=2, at=5.0, restart_at=9.0),))
    ctx, nodes = make_net(spec)
    ctx.sim.run(until=6.0)
    assert not nodes[2].alive
    # The crashed node dropped out of the connectivity graph entirely.
    assert ctx.topology.hops(0, 3) is None
    ctx.sim.run(until=10.0)
    assert nodes[2].alive
    assert ctx.topology.hops(0, 3) == 3
    assert ctx.events.snapshot() == {"fault_crashes": 1, "fault_restarts": 1}


def test_crash_of_already_dead_node_is_skipped():
    spec = FaultSpec(crashes=(CrashEvent(node_id=2, at=5.0, restart_at=9.0),))
    ctx, nodes = make_net(spec)
    nodes[2].kill()
    ctx.topology.invalidate()
    ctx.sim.run(until=10.0)
    assert not nodes[2].alive  # the restart does not resurrect it either
    assert ctx.events.snapshot() == {"fault_crash_skipped": 1}


def test_partition_cut_jams_cross_traffic_only_while_active():
    spec = FaultSpec(partitions=(PartitionEvent((0, 1), at=10.0, heal_at=20.0),))
    ctx, nodes = make_net(spec)
    faults = ctx.faults

    def blocked(a, b):
        return faults.link_blocked(a, b)

    assert not blocked(1, 2)          # before the cut
    ctx.sim.run(until=15.0)
    assert blocked(1, 2)              # across the cut boundary
    assert blocked(2, 0)
    assert not blocked(0, 1)          # same side
    assert not blocked(2, 3)
    ctx.sim.run(until=25.0)
    assert not blocked(1, 2)          # healed


def test_cut_drops_unicast_but_topology_stays_optimistic():
    spec = FaultSpec(partitions=(PartitionEvent((0,), at=0.0, heal_at=50.0),))
    ctx, nodes = make_net(spec)
    outcome = ctx.transport.send(nodes[0], nodes[2], Message("PING", 0, 2),
                                 category=Category.CONFIG)
    assert outcome.ok and outcome.dropped == 1  # jammed, silently
    assert ctx.topology.hops(0, 2) == 2         # hello oracle unaffected


def test_link_churn_is_a_pure_function_of_seed_link_and_bucket():
    spec = FaultSpec(link_churn_rate=0.5, link_churn_period=10.0)
    ctx_a, _ = make_net(spec, seed=3)
    ctx_b, _ = make_net(spec, seed=3)
    pattern_a = [ctx_a.faults.link_blocked(a, b)
                 for a in range(4) for b in range(4) if a != b]
    pattern_b = [ctx_b.faults.link_blocked(a, b)
                 for a in range(4) for b in range(4) if a != b]
    assert pattern_a == pattern_b
    assert any(pattern_a)            # at 50 % some link is down
    assert not all(pattern_a)        # ...and some link is up
    # Symmetric: blocked(a, b) == blocked(b, a).
    assert ctx_a.faults.link_blocked(1, 2) == ctx_a.faults.link_blocked(2, 1)


def test_extra_delay_postpones_delivery():
    ctx, nodes = make_net(FaultSpec(extra_delay=0.5))
    ctx.transport.send(nodes[0], nodes[1], Message("PING", 0, 1),
                       category=Category.CONFIG)
    ctx.sim.run(until=0.4)
    assert nodes[1].agent.received == []
    ctx.sim.run(until=0.6)
    assert nodes[1].agent.received == [("PING", 1)]


def test_fault_streams_do_not_perturb_other_randomness():
    """Variance isolation: enabling loss must not shift e.g. the
    scenario or mobility streams of the same master seed."""
    ctx_plain, _ = make_net(None, seed=9)
    ctx_faulty, _ = make_net(FaultSpec(loss_rate=0.3), seed=9)
    for stream in ("scenario", "placement", "mobility-0"):
        a = ctx_plain.sim.streams.get(stream)
        b = ctx_faulty.sim.streams.get(stream)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_flood_under_loss_charges_full_forwarder_cost():
    """Forwarding is decided before fault sampling, so the charged
    flood cost is identical with and without loss."""
    ctx_plain, nodes_plain = make_net(None)
    plain = ctx_plain.transport.send(
        nodes_plain[0], None, Message("WAVE", 0, None),
        category=Category.RECLAMATION, scope=Scope.FLOOD)
    ctx_lossy, nodes_lossy = make_net(FaultSpec(loss_rate=0.999999))
    lossy = ctx_lossy.transport.send(
        nodes_lossy[0], None, Message("WAVE", 0, None),
        category=Category.RECLAMATION, scope=Scope.FLOOD)
    assert lossy.cost_hops == plain.cost_hops
    assert lossy.dropped == len(plain.receivers) == 3
    assert lossy.receivers == ()
