"""Unit tests for ProtocolConfig validation."""

import pytest

from repro.core import ProtocolConfig


def test_defaults_are_valid():
    cfg = ProtocolConfig()
    assert cfg.address_space_size == 1024
    assert cfg.location_update_mode == "periodic"


def test_address_space_size_derivation():
    assert ProtocolConfig(address_space_bits=4).address_space_size == 16


def test_invalid_bits_rejected():
    with pytest.raises(ValueError):
        ProtocolConfig(address_space_bits=0)
    with pytest.raises(ValueError):
        ProtocolConfig(address_space_bits=30)


def test_invalid_location_mode_rejected():
    with pytest.raises(ValueError):
        ProtocolConfig(location_update_mode="sometimes")


def test_upon_leave_mode_accepted():
    assert ProtocolConfig(location_update_mode="upon_leave")


def test_max_r_positive():
    with pytest.raises(ValueError):
        ProtocolConfig(max_r=0)
