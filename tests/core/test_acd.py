"""Commit-time address conflict detection (the RFC 5227-style probe)."""

from repro.core import ProtocolConfig

from tests.helpers import add_node, line_agents, make_ctx


def configured_chain(ctx, count, cfg=None):
    agents = line_agents(ctx, count, cfg=cfg)
    ctx.sim.run(until=count * 15.0 + 20.0)
    return agents


def test_no_conflict_for_unbound_address():
    ctx = make_ctx()
    agents = configured_chain(ctx, 2)
    head = agents[0]
    free = head.head.pool.peek_free()
    assert not head._acd_conflict(free, requester=99)


def test_no_conflict_when_bound_to_requester():
    ctx = make_ctx()
    agents = configured_chain(ctx, 2)
    head, common = agents
    assert not head._acd_conflict(common.ip, requester=common.node_id)


def test_conflict_when_bound_to_other_alive_same_network_node():
    ctx = make_ctx()
    agents = configured_chain(ctx, 2)
    head, common = agents
    assert head._acd_conflict(common.ip, requester=99)


def test_no_conflict_with_dead_holder():
    ctx = make_ctx()
    agents = configured_chain(ctx, 3)
    head, common = agents[0], agents[1]
    address = common.ip
    common.node.kill()  # dead but registry binding untouched mid-crash
    assert not head._acd_conflict(address, requester=99)


def test_no_conflict_across_networks():
    ctx = make_ctx()
    cfg = ProtocolConfig(merge_detection_enabled=False)
    left = configured_chain(ctx, 2, cfg=cfg)
    # A second, disconnected network.
    loner = add_node(ctx, 50, 900.0, 900.0, cfg=cfg)
    loner.on_enter()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    assert loner.head is not None
    assert loner.network_id != left[0].network_id
    # The loner's address 0 is bound, but in a different network:
    # left's head probing 0 for its own network sees no conflict...
    # unless the registry says the binder is in OUR network.
    binder = ctx.resolve_ip(0)
    if binder == loner.node_id:
        assert not left[0]._acd_conflict(0, requester=99)


def test_commit_retries_past_conflicted_address():
    """If the lowest free address is secretly bound (forked history),
    the allocator books the truth and configures with the next one."""
    ctx = make_ctx()
    agents = configured_chain(ctx, 2)
    head, common = agents
    # Fabricate a fork: the pool believes some address is free although
    # a live node of the same network answers for it.
    victim_address = head.head.pool.peek_free()
    ctx.bind_ip(victim_address, common.node_id)
    newcomer = add_node(ctx, 77, 160.0, 560.0)
    newcomer.on_enter()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    assert newcomer.is_configured()
    assert newcomer.ip != victim_address
    # The allocator adopted the truth.
    assert victim_address in head.head.pool.allocated
