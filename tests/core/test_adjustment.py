"""Quorum adjustment: suspicion, T_d shrink, REP_REQ probe (Section V-B)."""

from repro.cluster.roles import Role
from repro.core import ProtocolConfig

from tests.helpers import line_agents, make_ctx, positions_cluster


def heads_of(agents):
    return [a for a in agents if a.role is Role.HEAD]


def redundant_rows(ctx, cfg, columns=7):
    """Two parallel rows whose diagonals are in range: killing any one
    node leaves the rest connected (death without partition)."""
    coordinates = [(100.0 + 120.0 * i, 500.0) for i in range(columns)]
    coordinates += [(100.0 + 120.0 * i, 560.0) for i in range(columns)]
    return positions_cluster(ctx, coordinates, cfg=cfg)


def test_dead_member_suspected_then_removed():
    ctx = make_ctx()
    cfg = ProtocolConfig(td=2.0, tr=1.0, audit_interval=1.0)
    agents = redundant_rows(ctx, cfg)
    ctx.sim.run(until=200.0)
    heads = heads_of(agents)
    assert len(heads) >= 2
    victim = heads[1]
    observers = [h for h in heads if h is not victim
                 and victim.node_id in h.head.qdset]
    assert observers
    victim.vanish()
    ctx.sim.run(until=ctx.sim.now + 25.0)
    for observer in observers:
        if observer.head is not None:
            assert victim.node_id not in observer.head.qdset


def test_majority_consent_blocks_minority_shrink():
    """A head that cannot reach a majority of its quorum universe must
    not shrink it (the other side of a partition could do the same and
    both would proceed independently)."""
    ctx = make_ctx()
    cfg = ProtocolConfig(td=2.0, tr=1.0, audit_interval=1.0,
                         merge_detection_enabled=False)
    agents = line_agents(ctx, 7, cfg=cfg)
    ctx.sim.run(until=110.0)
    heads = heads_of(agents)
    edge = heads[-1]
    members_before = set(edge.head.qdset.members())
    assert members_before
    old_network = edge.network_id
    # Kill every OTHER node: edge is alone, majority unreachable.
    for agent in agents:
        if agent is not edge:
            agent.vanish()
    ctx.sim.run(until=ctx.sim.now + 8.0)
    # Either the members are still there (suspected, not removed), or
    # the head gave up on the old network entirely and re-founded a
    # fresh one — but it never shrank the quorum of the old space.
    if edge.network_id == old_network:
        assert set(edge.head.qdset.members()) == members_before


def test_rep_ack_restores_membership():
    """A member that answers the REP_REQ probe is kept (re-added)."""
    ctx = make_ctx()
    cfg = ProtocolConfig(td=1.5, tr=6.0, audit_interval=1.0)
    agents = line_agents(ctx, 7, cfg=cfg)
    ctx.sim.run(until=110.0)
    heads = heads_of(agents)
    observer, subject = heads[0], heads[1]
    # Force suspicion without killing: artificially suspect.
    observer._suspect_member(subject.node_id)
    ctx.sim.run(until=ctx.sim.now + 10.0)
    # Subject is alive and reachable: suspicion cleared on audit.
    assert subject.node_id in observer.head.qdset
    assert observer.head.qdset.suspected() == []


def test_new_head_in_neighborhood_joins_qdset():
    ctx = make_ctx()
    agents = line_agents(ctx, 7)
    ctx.sim.run(until=110.0)
    heads = heads_of(agents)
    for i, a in enumerate(heads):
        for b in heads[i + 1:]:
            hops = ctx.topology.hops(a.node_id, b.node_id)
            if hops is not None and hops <= 3:
                assert b.node_id in a.head.qdset
                assert a.node_id in b.head.qdset


def test_adjustment_disabled_keeps_members():
    ctx = make_ctx()
    cfg = ProtocolConfig(adjustment_enabled=False, audit_interval=1.0,
                         merge_detection_enabled=False)
    agents = redundant_rows(ctx, cfg)
    ctx.sim.run(until=200.0)
    heads = heads_of(agents)
    victim = heads[1]
    observers = [h for h in heads if h is not victim
                 and victim.node_id in h.head.qdset]
    assert observers
    victim.vanish()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    # Without adjustment the member lingers (no Td shrink machinery).
    for observer in observers:
        assert victim.node_id in observer.head.qdset
