"""Common-node configuration through quorum voting (Fig. 2)."""

from repro.addrspace.records import AddressStatus
from repro.cluster.roles import Role
from repro.core import ProtocolConfig

from tests.helpers import (
    assert_unique_addresses,
    line_agents,
    make_ctx,
)


def test_second_node_becomes_common():
    ctx = make_ctx()
    agents = line_agents(ctx, 2)
    ctx.sim.run(until=30.0)
    head, common = agents
    assert head.role is Role.HEAD
    assert common.role is Role.COMMON
    assert common.common.configurer_id == head.node_id
    assert common.ip is not None and common.ip != head.ip


def test_common_node_within_two_hops_joins_cluster():
    ctx = make_ctx()
    agents = line_agents(ctx, 3)  # node 2 is exactly 2 hops from head
    ctx.sim.run(until=40.0)
    assert agents[2].role is Role.COMMON
    assert agents[2].common.configurer_id == agents[0].node_id


def test_addresses_unique_along_chain():
    ctx = make_ctx()
    agents = line_agents(ctx, 6)
    ctx.sim.run(until=80.0)
    assert all(a.is_configured() for a in agents)
    assert_unique_addresses(agents)


def test_allocator_ledger_marks_assignment():
    ctx = make_ctx()
    agents = line_agents(ctx, 2)
    ctx.sim.run(until=30.0)
    head, common = agents
    record = head.head.ledger.get(common.ip)
    assert record.status is AddressStatus.ASSIGNED
    assert record.holder == common.node_id
    assert common.ip in head.head.pool.allocated
    assert head.head.configured[common.ip] == common.node_id


def test_network_id_propagates():
    ctx = make_ctx()
    agents = line_agents(ctx, 4)
    ctx.sim.run(until=60.0)
    ids = {a.network_id for a in agents}
    assert len(ids) == 1


def test_common_latency_is_small_and_positive():
    ctx = make_ctx()
    agents = line_agents(ctx, 2)
    ctx.sim.run(until=30.0)
    # 1-hop request + reply, no quorum members yet: exactly 2 hops.
    assert agents[1].config_latency_hops == 2


def test_latency_includes_quorum_round_trip_with_majority_voting():
    """Without dynamic linear voting, a strict majority of {self, head0}
    needs head0's vote: the quorum round trip lands on the critical
    path of a common-node configuration."""
    ctx = make_ctx()
    cfg = ProtocolConfig(use_linear_voting=False)
    agents = line_agents(ctx, 5, cfg=cfg)  # heads at 0 and 3
    ctx.sim.run(until=80.0)
    head2 = agents[3]
    assert head2.role is Role.HEAD
    follower = agents[4]
    assert follower.role is Role.COMMON
    # COM_REQ (1) + quorum round trip to head0 (2 * 3) + COM_CFG (1).
    assert follower.config_latency_hops == 8


def test_linear_voting_short_circuits_the_round_trip():
    """Dynamic linear voting (Section II-D): with an even universe
    {self, head0} and the owner distinguished, the allocator's own copy
    already forms a quorum — the configuration completes in 2 hops."""
    ctx = make_ctx()
    cfg = ProtocolConfig(use_linear_voting=True)
    agents = line_agents(ctx, 5, cfg=cfg)
    ctx.sim.run(until=80.0)
    follower = agents[4]
    assert follower.role is Role.COMMON
    assert follower.config_latency_hops == 2


def test_ip_registry_binding():
    ctx = make_ctx()
    agents = line_agents(ctx, 3)
    ctx.sim.run(until=40.0)
    for agent in agents:
        assert ctx.resolve_ip(agent.ip) == agent.node_id


def test_balance_allocators_picks_largest_block():
    ctx = make_ctx()
    cfg = ProtocolConfig(balance_allocators=True)
    agents = line_agents(ctx, 5, cfg=cfg)
    ctx.sim.run(until=80.0)
    assert all(a.is_configured() for a in agents)
    assert_unique_addresses(agents)
