"""Graceful departure of common nodes and cluster heads (Section IV-C)."""

from repro.addrspace.records import AddressStatus
from repro.cluster.roles import Role

from tests.helpers import line_agents, make_ctx


def configured_chain(ctx, count, until=None):
    agents = line_agents(ctx, count)
    ctx.sim.run(until=until or (count * 15.0 + 20.0))
    assert all(a.is_configured() for a in agents)
    return agents


def test_common_departure_returns_address():
    ctx = make_ctx()
    agents = configured_chain(ctx, 2)
    head, common = agents
    address = common.ip
    common.depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    assert not common.node.alive
    assert head.head.pool.is_free(address)
    assert head.head.ledger.get(address).status is AddressStatus.FREE
    assert address not in head.head.configured


def test_departed_address_is_reused():
    ctx = make_ctx()
    agents = configured_chain(ctx, 3)
    head = agents[0]
    address = agents[1].ip
    agents[1].depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 10.0)
    # A new node arrives at the departed node's spot.
    from tests.helpers import add_node
    newcomer = add_node(ctx, 99, 220.0, cfg=agents[0].cfg)
    newcomer.on_enter()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    assert newcomer.is_configured()
    # Lowest free address is the one just returned.
    assert newcomer.ip == address
    assert head.head.configured.get(address) == 99


def test_departure_updates_replicas():
    ctx = make_ctx()
    agents = configured_chain(ctx, 5)  # heads at 0 and 3
    head0, head3 = agents[0], agents[3]
    follower = agents[4]  # configured by head3
    address = follower.ip
    follower.depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    replica = head0.head.replicas.get(head3.node_id)
    if replica is not None and replica.covers(address):
        assert replica.ledger.get(address).status is AddressStatus.FREE


def test_head_departure_returns_block_to_configurer():
    ctx = make_ctx()
    agents = configured_chain(ctx, 4)
    head0, head3 = agents[0], agents[3]
    total_before = (head0.head.pool.total_count()
                    + head3.head.pool.total_count())
    head3.depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    assert not head3.node.alive
    # All space (including head3's own address) returned to head0.
    assert head0.head.pool.total_count() == total_before


def test_head_departure_transfers_configured_members():
    ctx = make_ctx()
    # Two rows so the follower stays connected after its head leaves.
    from tests.helpers import positions_cluster
    coordinates = [(100.0 + 120.0 * i, 500.0) for i in range(5)]
    coordinates += [(100.0 + 120.0 * i, 560.0) for i in range(5)]
    agents = positions_cluster(ctx, coordinates)
    ctx.sim.run(until=160.0)
    heads = [a for a in agents if a.head is not None]
    assert len(heads) >= 2
    departing = heads[1]
    members = [
        ctx.agent_of(holder)
        for address, holder in departing.head.configured.items()
        if address != departing.ip and ctx.agent_of(holder) is not None
    ]
    assert members
    departing.depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    # ALLOC_CHANGE: members now belong to the absorbing head.
    for member in members:
        if member.common is None:
            continue
        new_configurer = member.common.configurer_id
        assert new_configurer != departing.node_id
        owner = ctx.agent_of(new_configurer)
        assert owner is not None and owner.head is not None
        assert owner.head.configured.get(member.ip) == member.node_id


def test_head_departure_resigns_from_qdsets():
    ctx = make_ctx()
    agents = configured_chain(ctx, 4)
    head0, head3 = agents[0], agents[3]
    head3.depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    assert head3.node_id not in head0.head.qdset
    assert head0.head.replicas.get(head3.node_id) is None


def test_unconfigured_node_departs_silently():
    ctx = make_ctx()
    from tests.helpers import add_node
    loner = add_node(ctx, 0, 500.0)
    loner.on_enter()
    ctx.sim.run(until=0.5)  # not configured yet
    loner.depart_gracefully()
    ctx.sim.run(until=30.0)
    assert not loner.node.alive
    assert loner.ip is None


def test_abrupt_departure_sends_nothing():
    ctx = make_ctx()
    agents = configured_chain(ctx, 2)
    before = dict(ctx.stats.hops)
    agents[1].vanish()
    assert dict(ctx.stats.hops) == before
    assert not agents[1].node.alive


def test_departure_unbinds_ip():
    ctx = make_ctx()
    agents = configured_chain(ctx, 2)
    address = agents[1].ip
    agents[1].depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 10.0)
    assert ctx.resolve_ip(address) is None
