"""Address reclamation of abruptly departed cluster heads (Section
IV-D)."""

from repro.cluster.roles import Role
from repro.core import ProtocolConfig
from repro.net.stats import Category

from tests.helpers import make_ctx, positions_cluster


def reclamation_cfg(**overrides):
    overrides.setdefault("td", 1.5)
    overrides.setdefault("tr", 1.0)
    overrides.setdefault("audit_interval", 1.0)
    overrides.setdefault("reclamation_window", 2.0)
    return ProtocolConfig(**overrides)


def redundant_network(ctx, cfg, columns=7):
    coordinates = [(100.0 + 120.0 * i, 500.0) for i in range(columns)]
    coordinates += [(100.0 + 120.0 * i, 560.0) for i in range(columns)]
    agents = positions_cluster(ctx, coordinates, cfg=cfg)
    ctx.sim.run(until=200.0)
    assert all(a.is_configured() for a in agents)
    return agents


def test_dead_head_space_is_absorbed():
    ctx = make_ctx()
    cfg = reclamation_cfg()
    agents = redundant_network(ctx, cfg)
    heads = [a for a in agents if a.role is Role.HEAD]
    victim = heads[1]
    space_of_victim = victim.head.pool.total_count()
    assert space_of_victim > 0
    survivors = [h for h in heads if h is not victim]
    before = sum(h.head.pool.total_count() for h in survivors)
    victim.vanish()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    survivors = [h for h in survivors if h.head is not None]
    after = sum(h.head.pool.total_count() for h in survivors)
    # The victim's unassigned space (everything but addresses held by
    # surviving members) was recovered by exactly one absorber.
    assert after > before
    assert ctx.stats.hops[Category.RECLAMATION] > 0


def test_single_absorber_no_double_ownership():
    ctx = make_ctx()
    cfg = reclamation_cfg()
    agents = redundant_network(ctx, cfg)
    heads = [a for a in agents if a.role is Role.HEAD]
    victim = heads[1]
    victim_addresses = set()
    for block in victim.head.pool.snapshot_blocks():
        victim_addresses.update(block.addresses())
    victim.vanish()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    owners = {}
    for head in heads:
        if head is victim or head.head is None or not head.node.alive:
            continue
        for address in victim_addresses:
            if head.head.pool.owns(address):
                assert address not in owners, (
                    f"address {address} owned by both {owners[address]} "
                    f"and {head.node_id}"
                )
                owners[address] = head.node_id
    assert owners  # someone did absorb


def test_surviving_members_addresses_stay_assigned():
    ctx = make_ctx()
    cfg = reclamation_cfg()
    agents = redundant_network(ctx, cfg)
    heads = [a for a in agents if a.role is Role.HEAD]
    victim = heads[1]
    members = [
        ctx.agent_of(holder) for addr, holder in victim.head.configured.items()
        if ctx.agent_of(holder) is not None and addr != victim.ip
    ]
    victim.vanish()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    for member in members:
        if not member.node.alive or member.common is None:
            continue
        # The member's address must not be reassigned to someone else.
        address = member.common.ip
        for head in heads:
            if head.head is None or not head.node.alive:
                continue
            if head.head.pool.owns(address):
                assert head.head.configured.get(address) in (
                    member.node_id, None)


def test_reclaimed_addresses_become_available():
    ctx = make_ctx()
    cfg = reclamation_cfg(address_space_bits=4)  # tight space: 16
    agents = redundant_network(ctx, cfg, columns=5)
    heads = [a for a in agents if a.role is Role.HEAD]
    if len(heads) < 2:
        return
    victim = heads[1]
    victim.vanish()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    from tests.helpers import add_node
    newcomer = add_node(ctx, 77, 340.0, 440.0, cfg=cfg)
    newcomer.on_enter()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    assert newcomer.is_configured()


def test_transient_unreachability_cancels_reclamation():
    """A head that merely wandered away and comes back must keep its
    space (no duplicate assignment after healing)."""
    ctx = make_ctx()
    cfg = reclamation_cfg(reclamation_window=6.0)
    agents = redundant_network(ctx, cfg)
    heads = [a for a in agents if a.role is Role.HEAD]
    wanderer = heads[1]
    from repro.geometry import Point
    from repro.mobility.base import Stationary
    home = wanderer.node.position(ctx.sim.now)
    # Vanish from radio range briefly (shorter than the window).
    wanderer.node.mobility = Stationary(Point(3000.0, 3000.0))
    ctx.topology.invalidate()
    ctx.sim.run(until=ctx.sim.now + 4.0)
    wanderer.node.mobility = Stationary(home)
    ctx.topology.invalidate()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    # Nobody absorbed the wanderer's space.
    for head in heads:
        if head is wanderer or head.head is None:
            continue
        assert not head.head.pool.owns(wanderer.ip)
