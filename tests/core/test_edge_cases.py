"""Edge-case coverage for the core protocol's safety machinery."""

from repro.addrspace import Block
from repro.addrspace.records import AddressStatus
from repro.cluster.roles import Role
from repro.core import ProtocolConfig
from repro.core import messages as m
from repro.core.protocol import CONFLICT_TS
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net.message import Message
from repro.net.stats import Category

from tests.helpers import add_node, line_agents, make_ctx, positions_cluster


def configured_chain(ctx, count, cfg=None):
    agents = line_agents(ctx, count, cfg=cfg)
    ctx.sim.run(until=count * 15.0 + 20.0)
    return agents


# ---------------------------------------------------------------------------
# Relay / agent-forwarding (Section V-A second paragraph)
# ---------------------------------------------------------------------------
def test_dry_head_without_quorum_relays_to_configurer():
    ctx = make_ctx()
    cfg = ProtocolConfig(address_space_bits=3, borrowing_enabled=True)
    agents = configured_chain(ctx, 4, cfg=cfg)
    head3 = agents[3]
    assert head3.role is Role.HEAD
    # Drain head3's own space AND make its replicas useless by draining
    # head0 as well, so select_candidate finds nothing and the request
    # must be relayed (or self-audited).
    for agent in (agents[0], head3):
        while agent.head.pool.peek_free() is not None:
            agent.head.pool.allocate()
        for address in list(agent.head.pool.allocated):
            agent.head.ledger.mark_assigned(address, holder=999)
    for replica_owner in head3.head.replicas.owners():
        replica = head3.head.replicas.get(replica_owner)
        for address in list(replica.free_addresses()):
            replica.ledger.mark_assigned(address, holder=999)
    newcomer = add_node(ctx, 50, 100.0 + 120.0 * 4, cfg=cfg)
    newcomer.on_enter()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    # The network is genuinely full: the newcomer must not be configured
    # with a duplicate, whatever else happens.
    if newcomer.ip is not None:
        for agent in agents:
            if agent.ip is not None:
                assert (agent.network_id, agent.ip) != (
                    newcomer.network_id, newcomer.ip)


# ---------------------------------------------------------------------------
# Cross-owner conflict veto
# ---------------------------------------------------------------------------
def test_conflict_veto_blocks_forked_ownership():
    ctx = make_ctx()
    cfg = ProtocolConfig(use_linear_voting=False)
    agents = configured_chain(ctx, 7, cfg=cfg)  # heads at 0, 3, 6
    heads = [a for a in agents if a.role is Role.HEAD]
    assert len(heads) >= 2
    a, b = heads[0], heads[1]
    # Fork ownership artificially: give head A a free block that B also
    # owns (the corruption the veto defends against).
    stolen = sorted(b.head.pool.allocated)[0]
    a.head.pool.absorb_free(stolen)
    before = ctx.agent_of(b.head.configured.get(stolen, -1))
    # A proposes the stolen address to a newcomer.
    newcomer = add_node(ctx, 60, 100.0, 560.0, cfg=cfg)
    newcomer.on_enter()
    ctx.sim.run(until=ctx.sim.now + 25.0)
    if newcomer.ip is not None:
        holder = b.head.configured.get(stolen)
        if holder is not None and holder != newcomer.node_id:
            assert newcomer.ip != stolen, (
                "conflict veto failed: forked address assigned")


def test_conflict_votes_never_pollute_ledgers():
    ctx = make_ctx()
    agents = configured_chain(ctx, 4)
    head = agents[0]
    for _address, record in head.head.ledger.items():
        assert record.timestamp < CONFLICT_TS


# ---------------------------------------------------------------------------
# INIT coordination
# ---------------------------------------------------------------------------
def test_init_defer_from_configured_node():
    ctx = make_ctx()
    agents = configured_chain(ctx, 3)
    # An unconfigured newcomer next to a configured common node whose
    # head is out of its 2-hop range: it must NOT found a second
    # network, but join via the CH_REQ path.
    newcomer = add_node(ctx, 50, 100.0 + 120.0 * 3)
    newcomer.on_enter()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    assert newcomer.is_configured()
    assert newcomer.network_id == agents[0].network_id


def test_three_simultaneous_entrants_one_network():
    ctx = make_ctx()
    cfg = ProtocolConfig()
    agents = []
    for i in range(3):
        agent = add_node(ctx, i, 440.0 + 60.0 * i, cfg=cfg)
        ctx.sim.schedule(0.1 + 0.01 * i, agent.on_enter)
        agents.append(agent)
    ctx.sim.run(until=60.0)
    assert all(a.is_configured() for a in agents)
    assert len({a.network_id for a in agents}) == 1


# ---------------------------------------------------------------------------
# Declines and rollback
# ---------------------------------------------------------------------------
def test_duplicate_com_cfg_is_reacked_not_declined():
    ctx = make_ctx()
    agents = configured_chain(ctx, 2)
    head, common = agents
    # Replay the configuration grant.
    replay = Message(m.COM_CFG, src=head.node_id, dst=common.node_id,
                     payload={"address": common.ip,
                              "allocator_ip": head.head.ip,
                              "allocator_id": head.node_id,
                              "network_id": head.network_id,
                              "lat": 0, "attempt": 12345},
                     network_id=head.network_id)
    common.on_message(replay)
    ctx.sim.run(until=ctx.sim.now + 5.0)
    # The address was not rolled back at the allocator.
    assert common.ip in head.head.pool.allocated


def test_foreign_grant_is_declined_and_rolled_back():
    ctx = make_ctx()
    agents = configured_chain(ctx, 5)  # heads at 0, 3
    head0, head3 = agents[0], agents[3]
    follower = agents[4]
    # head0 "grants" the follower an address it never asked to keep.
    from repro.core.configuration import PendingConfig
    free = head0.head.pool.peek_free()
    assert free is not None
    pending = PendingConfig(requester=follower.node_id, kind="common",
                            address=free, owner_id=head0.node_id)
    pending.collector = None
    head0._pending[pending.attempt_id] = pending
    head0.head.pool.allocate(free)
    head0.head.ledger.mark_assigned(free, follower.node_id)
    pending.cfg_delivered = True
    grant = Message(m.COM_CFG, src=head0.node_id, dst=follower.node_id,
                    payload={"address": free,
                             "allocator_ip": head0.head.ip,
                             "allocator_id": head0.node_id,
                             "network_id": head0.network_id,
                             "lat": 0, "attempt": pending.attempt_id},
                    network_id=head0.network_id)
    follower.on_message(grant)
    ctx.sim.run(until=ctx.sim.now + 5.0)
    # The follower declined (already configured elsewhere) and head0
    # rolled the grant back.
    assert head0.head.pool.is_free(free)
    assert head0.head.ledger.get(free).status is AddressStatus.FREE


# ---------------------------------------------------------------------------
# Out-of-addresses audit (REC_AUDIT)
# ---------------------------------------------------------------------------
def test_self_audit_recovers_dead_holders_addresses():
    ctx = make_ctx()
    cfg = ProtocolConfig(address_space_bits=3, reclamation_window=1.0)
    agents = configured_chain(ctx, 3, cfg=cfg)
    head = agents[0]
    victim = agents[1]
    leaked = victim.ip
    victim.vanish()  # abrupt: the address leaks
    ctx.sim.run(until=ctx.sim.now + 5.0)
    assert leaked in head.head.pool.allocated
    # Exhaust the pool so a new request triggers the audit.
    while head.head.pool.peek_free() is not None:
        head.head.pool.allocate()
    newcomer = add_node(ctx, 50, 220.0, 560.0, cfg=cfg)
    newcomer.on_enter()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    # The dead node's address was recovered (and possibly reused).
    assert (head.head.pool.is_free(leaked)
            or head.head.configured.get(leaked) not in (victim.node_id,))


def test_self_audit_spares_alive_distant_holders():
    ctx = make_ctx()
    cfg = ProtocolConfig(address_space_bits=3, reclamation_window=1.0)
    agents = configured_chain(ctx, 3, cfg=cfg)
    head, member = agents[0], agents[1]
    held = member.ip
    # The member wanders away (alive, unreachable).
    member.node.mobility = Stationary(Point(5000.0, 5000.0))
    ctx.topology.invalidate()
    while head.head.pool.peek_free() is not None:
        head.head.pool.allocate()
    newcomer = add_node(ctx, 50, 220.0, 560.0, cfg=cfg)
    newcomer.on_enter()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    # The alive holder's address is never freed.
    assert held in head.head.pool.allocated


# ---------------------------------------------------------------------------
# Retry helper
# ---------------------------------------------------------------------------
def test_send_with_retry_eventually_delivers():
    ctx = make_ctx()
    agents = configured_chain(ctx, 2)
    head, common = agents
    # Take the common node out of range, send, then bring it back.
    home = common.node.position(ctx.sim.now)
    common.node.mobility = Stationary(Point(5000.0, 5000.0))
    ctx.topology.invalidate()
    received = []
    original = common.on_message
    common.on_message = lambda msg: (received.append(msg.mtype),
                                     original(msg))
    head._send_with_retry(common.node_id, m.REP_REQ, {}, Category.MAINTENANCE,
                          retries=5, spacing=1.0)
    ctx.sim.run(until=ctx.sim.now + 2.0)
    assert "REP_REQ" not in received
    common.node.mobility = Stationary(home)
    ctx.topology.invalidate()
    ctx.sim.run(until=ctx.sim.now + 6.0)
    assert "REP_REQ" in received
