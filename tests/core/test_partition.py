"""Network partition and merge handling (Section V-C)."""

from repro.cluster.roles import Role
from repro.core import ProtocolConfig
from repro.geometry import Point
from repro.mobility.base import Stationary

from tests.helpers import (
    assert_unique_addresses,
    line_agents,
    make_ctx,
    positions_cluster,
)


def partition_cfg(**overrides):
    overrides.setdefault("merge_check_interval", 1.0)
    overrides.setdefault("audit_interval", 1.0)
    overrides.setdefault("td", 2.0)
    overrides.setdefault("tr", 1.0)
    return ProtocolConfig(**overrides)


def test_network_ids_are_unique_per_founding():
    ctx = make_ctx()
    cfg = partition_cfg()
    a = positions_cluster(ctx, [(100, 100)], cfg=cfg)[0]
    b = positions_cluster_offset(ctx, (900, 900), 1, cfg)
    ctx.sim.run(until=30.0)
    assert a.network_id is not None and b.network_id is not None
    assert a.network_id != b.network_id


def positions_cluster_offset(ctx, origin, node_id, cfg):
    from tests.helpers import add_node
    agent = add_node(ctx, 100 + node_id, origin[0], origin[1], cfg=cfg)
    ctx.sim.schedule(0.2, agent.on_enter)
    return agent


def test_merge_two_networks_one_survives():
    """Two separately founded networks brought into contact merge: the
    younger (larger-ID) network's nodes reconfigure into the older."""
    ctx = make_ctx()
    cfg = partition_cfg()
    # Network A: chain on the left.
    left = positions_cluster(
        ctx, [(100 + 120 * i, 200) for i in range(3)], cfg=cfg)
    # Network B: chain far away on the right (founded later).
    from tests.helpers import add_node
    right = []
    for i in range(3):
        agent = add_node(ctx, 50 + i, 100 + 120 * i, 900, cfg=cfg)
        ctx.sim.schedule(20.0 + 5.0 * i, agent.on_enter)
        right.append(agent)
    ctx.sim.run(until=60.0)
    nets = {a.network_id for a in left} | {a.network_id for a in right}
    assert len(nets) == 2
    older = min(nets)
    # Bring B's nodes next to A (a merge).
    for i, agent in enumerate(right):
        agent.node.mobility = Stationary(Point(100 + 120 * i, 320))
    ctx.topology.invalidate()
    ctx.sim.run(until=200.0)
    everyone = left + right
    configured = [a for a in everyone if a.is_configured()]
    assert len(configured) == len(everyone)
    assert {a.network_id for a in configured} == {older}
    assert_unique_addresses(everyone)


def test_merge_join_command_triggers_rejoin():
    ctx = make_ctx()
    cfg = partition_cfg()
    agents = line_agents(ctx, 4, cfg=cfg)
    ctx.sim.run(until=60.0)
    common = agents[1]
    before = common.reconfigurations
    from repro.core import messages as m
    from repro.net.message import Message
    common.on_message(Message(m.MERGE_JOIN, src=0, dst=common.node_id))
    ctx.sim.run(until=ctx.sim.now + 30.0)
    assert common.reconfigurations == before + 1
    assert common.is_configured()


def test_isolated_head_refounds_network():
    """A head partitioned from every other head regains a whole fresh
    address space under a new network ID (Section V-C)."""
    ctx = make_ctx()
    cfg = partition_cfg()
    agents = line_agents(ctx, 7, cfg=cfg)  # heads at 0, 3, 6
    ctx.sim.run(until=110.0)
    edge = next(a for a in agents if a.role is Role.HEAD
                and a.node_id == 6)
    old_net = edge.network_id
    old_space = edge.head.pool.total_count()
    # Move the edge head and its member far away, alone.
    for agent in agents:
        if agent.node_id in (5, 6):
            offset = (agent.node_id - 5) * 100.0
            agent.node.mobility = Stationary(Point(3000 + offset, 3000))
    ctx.topology.invalidate()
    ctx.sim.run(until=ctx.sim.now + 60.0)
    assert edge.network_id != old_net
    assert edge.head.pool.total_count() == cfg.address_space_size
    assert edge.head.pool.total_count() > old_space
    # Its stranded member reconfigured against the fresh network.
    member = next(a for a in agents if a.node_id == 5)
    if member.is_configured():
        assert member.network_id == edge.network_id


def test_partitioned_networks_never_share_addresses():
    """Even while partitioned, (network, address) pairs stay unique."""
    ctx = make_ctx()
    cfg = partition_cfg()
    agents = line_agents(ctx, 10, cfg=cfg)
    ctx.sim.run(until=160.0)
    # Split the chain in half by pulling nodes 5-9 away.
    for agent in agents[5:]:
        index = agent.node_id - 5
        agent.node.mobility = Stationary(Point(2000 + 120 * index, 2000))
    ctx.topology.invalidate()
    ctx.sim.run(until=ctx.sim.now + 80.0)
    assert_unique_addresses(agents)


def test_orphan_rescue_rejoins_available_network():
    """A configured common node stranded among foreign heads rejoins
    rather than staying wedged on its dead network's ID."""
    ctx = make_ctx()
    cfg = partition_cfg()
    left = positions_cluster(
        ctx, [(100 + 120 * i, 200) for i in range(4)], cfg=cfg)
    ctx.sim.run(until=80.0)
    # A second network forms far away.
    from tests.helpers import add_node
    right = []
    for i in range(3):
        agent = add_node(ctx, 60 + i, 100 + 120 * i, 900, cfg=cfg)
        ctx.sim.schedule(ctx.sim.now + 1.0 + 5.0 * i, agent.on_enter)
        right.append(agent)
    ctx.sim.run(until=ctx.sim.now + 40.0)
    orphan = left[1]
    assert orphan.role is Role.COMMON
    # Teleport the orphan alone into the second network's area.
    orphan.node.mobility = Stationary(Point(220, 960))
    ctx.topology.invalidate()
    ctx.sim.run(until=ctx.sim.now + 60.0)
    assert orphan.is_configured()
    assert orphan.network_id == right[0].network_id
