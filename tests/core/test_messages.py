"""Sanity checks on the protocol message vocabulary."""

from repro.core import messages as m


def test_all_types_unique():
    assert len(m.ALL_TYPES) == len(set(m.ALL_TYPES))


def test_all_types_match_their_constants():
    for mtype in m.ALL_TYPES:
        assert getattr(m, mtype) == mtype


def test_table1_vocabulary_present():
    for name in ("CH_REQ", "CH_PRP", "CH_CNF", "QUORUM_CLT",
                 "QUORUM_CFM", "CH_CFG", "CH_ACK"):
        assert name in m.ALL_TYPES


def test_paper_named_messages_present():
    # The messages the paper names explicitly in Sections IV-V.
    for name in ("COM_REQ", "UPDATE_LOC", "RETURN_ADDR", "ADDR_REC",
                 "REC_REP", "REP_REQ"):
        assert name in m.ALL_TYPES


def test_every_module_constant_is_registered():
    constants = {
        name: value for name, value in vars(m).items()
        if name.isupper() and isinstance(value, str) and name != "ALL_TYPES"
    }
    for name, value in constants.items():
        assert value in m.ALL_TYPES, f"{name} missing from ALL_TYPES"
