"""Allocator choice: network ranking and the largest-block alternative."""

from repro.core import ProtocolConfig

from tests.helpers import add_node, line_agents, make_ctx


def test_rank_by_network_prefers_older_network():
    ctx = make_ctx()
    cfg = ProtocolConfig(merge_detection_enabled=False)
    # Two separate networks, founded in order.
    left = line_agents(ctx, 2, cfg=cfg, start_x=100.0)
    right = []
    for i in range(2):
        agent = add_node(ctx, 10 + i, 100.0 + 120.0 * i, 900.0, cfg=cfg)
        ctx.sim.schedule(20.0 + 5.0 * i, agent.on_enter)
        right.append(agent)
    ctx.sim.run(until=60.0)
    older_head = left[0]
    younger_head = right[0]
    assert older_head.network_id < younger_head.network_id
    # A probe node that can see both heads ranks the older network
    # first even when the younger head is closer.
    probe = add_node(ctx, 99, 100.0, 500.0, cfg=cfg)
    candidates = [
        (older_head.node_id, 3),   # farther
        (younger_head.node_id, 1),  # nearer but younger network
    ]
    ranked = probe._rank_by_network(candidates)
    assert ranked[0][0] == older_head.node_id


def test_rank_by_network_falls_back_to_distance():
    ctx = make_ctx()
    agents = line_agents(ctx, 7)  # one network, several heads
    ctx.sim.run(until=110.0)
    heads = [a for a in agents if a.head is not None]
    assert len(heads) >= 2
    probe = agents[1]
    candidates = [(heads[0].node_id, 3), (heads[1].node_id, 1)]
    ranked = probe._rank_by_network(candidates)
    # Same network: nearest first.
    assert ranked[0][1] == 1


def test_rank_unknown_agents_last():
    ctx = make_ctx()
    agents = line_agents(ctx, 2)
    ctx.sim.run(until=30.0)
    probe = agents[1]
    ranked = probe._rank_by_network([(999, 1), (agents[0].node_id, 2)])
    assert ranked[0][0] == agents[0].node_id


def test_largest_block_allocator_balances_load():
    """The §IV-B alternative: with two allocators in range, the one
    with more free addresses is picked — and the query cost is charged."""
    ctx = make_ctx()
    cfg = ProtocolConfig(balance_allocators=True)
    agents = line_agents(ctx, 4, cfg=cfg)
    ctx.sim.run(until=60.0)
    heads = [a for a in agents if a.head is not None]
    assert len(heads) == 2
    big, small = sorted(heads, key=lambda h: -h.head.pool.free_count())
    # A newcomer equidistant-ish from both picks the bigger pool.
    probe = add_node(ctx, 77, 340.0, 560.0, cfg=cfg)
    near = probe._heads_within(2)
    if len(near) >= 2:
        choice = probe._pick_largest_block_allocator(near)
        assert choice == big.node_id
