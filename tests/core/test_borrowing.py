"""Address borrowing from the QuorumSpace (Section V-A)."""

import pytest

from repro.addrspace import Block
from repro.addrspace.records import AddressStatus
from repro.cluster.roles import Role
from repro.core import ProtocolConfig
from repro.core.borrowing import select_candidate
from repro.core.state import HeadState
from repro.quorum.replica import Replica

from tests.helpers import add_node, line_agents, make_ctx


# ---------------------------------------------------------------------------
# select_candidate unit tests
# ---------------------------------------------------------------------------
def make_head(blocks, qdset=()):
    head = HeadState(ip=blocks[0].start, blocks=blocks,
                     configurer_id=None, configurer_ip=None)
    head.pool.allocate(blocks[0].start)
    for member in qdset:
        head.qdset.add(member)
    return head


def test_own_space_preferred():
    head = make_head([Block(0, 8)])
    assert select_candidate(head, set(), borrowing_enabled=True) == (1, None)


def test_reserved_addresses_skipped():
    head = make_head([Block(0, 8)])
    candidate = select_candidate(head, {1, 2}, borrowing_enabled=True)
    assert candidate == (3, None)


def test_borrow_when_own_space_dry():
    head = make_head([Block(0, 2)])
    head.pool.allocate()  # exhaust: 0 = own ip, 1 allocated
    head.qdset.add(7)
    replica = Replica(7, [Block(8, 4)])
    head.replicas.install(replica)
    candidate = select_candidate(head, set(), borrowing_enabled=True)
    assert candidate == (8, 7)


def test_borrow_disabled_returns_none():
    head = make_head([Block(0, 2)])
    head.pool.allocate()
    head.qdset.add(7)
    head.replicas.install(Replica(7, [Block(8, 4)]))
    assert select_candidate(head, set(), borrowing_enabled=False) is None


def test_borrow_only_from_active_quorum_members():
    head = make_head([Block(0, 2)])
    head.pool.allocate()
    head.replicas.install(Replica(7, [Block(8, 4)]))  # 7 NOT in qdset
    assert select_candidate(head, set(), borrowing_enabled=True) is None


def test_borrow_skips_assigned_replica_addresses():
    head = make_head([Block(0, 2)])
    head.pool.allocate()
    head.qdset.add(7)
    replica = Replica(7, [Block(8, 2)])
    replica.ledger.mark_assigned(8, holder=9)
    head.replicas.install(replica)
    assert select_candidate(head, set(), borrowing_enabled=True) == (9, 7)


# ---------------------------------------------------------------------------
# End-to-end borrowing
# ---------------------------------------------------------------------------
@pytest.fixture
def dry_allocator_network():
    """A chain with heads at 0 and 3 where head 3's space is tiny."""
    ctx = make_ctx()
    cfg = ProtocolConfig(address_space_bits=3)  # only 8 addresses total
    agents = line_agents(ctx, 4, cfg=cfg)
    ctx.sim.run(until=60.0)
    assert agents[3].role is Role.HEAD
    return ctx, cfg, agents


def test_dry_head_borrows_from_quorum_space(dry_allocator_network):
    ctx, cfg, agents = dry_allocator_network
    head3 = agents[3]
    # Exhaust head3's own space.
    while head3.head.pool.peek_free() is not None:
        head3.head.pool.allocate()
    # A newcomer next to head3 must still be configured — with an
    # address borrowed from head0's space.
    newcomer = add_node(ctx, 50, 100.0 + 120.0 * 4, cfg=cfg)
    newcomer.on_enter()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    assert newcomer.is_configured()
    assert agents[0].head.owns(newcomer.ip)


def test_borrow_commits_at_owner(dry_allocator_network):
    ctx, cfg, agents = dry_allocator_network
    head0, head3 = agents[0], agents[3]
    while head3.head.pool.peek_free() is not None:
        head3.head.pool.allocate()
    newcomer = add_node(ctx, 50, 100.0 + 120.0 * 4, cfg=cfg)
    newcomer.on_enter()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    record = head0.head.ledger.get(newcomer.ip)
    assert record.status is AddressStatus.ASSIGNED
    assert newcomer.ip in head0.head.pool.allocated


def test_borrowed_addresses_stay_unique(dry_allocator_network):
    ctx, cfg, agents = dry_allocator_network
    head3 = agents[3]
    while head3.head.pool.peek_free() is not None:
        head3.head.pool.allocate()
    newcomers = []
    for i in range(2):
        agent = add_node(ctx, 50 + i, 100.0 + 120.0 * 4, cfg=cfg)
        ctx.sim.schedule(i * 3.0, agent.on_enter)
        newcomers.append(agent)
    ctx.sim.run(until=ctx.sim.now + 40.0)
    ips = [a.ip for a in newcomers if a.ip is not None]
    assert len(ips) == len(set(ips))
