"""Cluster-head configuration: block halving, replicas, QDSets (Fig. 3,
Table 1)."""

from repro.cluster.roles import Role
from repro.core import ProtocolConfig

from tests.helpers import assert_unique_addresses, line_agents, make_ctx


def test_node_beyond_two_hops_becomes_head():
    ctx = make_ctx()
    agents = line_agents(ctx, 4)  # node 3 is 3 hops from head 0
    ctx.sim.run(until=60.0)
    assert agents[3].role is Role.HEAD


def test_new_head_gets_half_the_block():
    ctx = make_ctx()
    cfg = ProtocolConfig(address_space_bits=6)  # 64 addresses
    agents = line_agents(ctx, 4, cfg=cfg)
    ctx.sim.run(until=60.0)
    first, new = agents[0].head, agents[3].head
    assert new is not None
    # The new head received the upper half [32, 64).
    assert new.ip == 32
    assert new.pool.total_count() == 32
    assert first.pool.total_count() + new.pool.total_count() == 64


def test_heads_are_never_neighbors():
    ctx = make_ctx()
    agents = line_agents(ctx, 8)
    ctx.sim.run(until=120.0)
    heads = [a for a in agents if a.role is Role.HEAD]
    assert len(heads) >= 2
    for i, a in enumerate(heads):
        for b in heads[i + 1:]:
            hops = ctx.topology.hops(a.node_id, b.node_id)
            assert hops is None or hops >= 2


def test_adjacent_heads_join_each_others_qdset():
    ctx = make_ctx()
    agents = line_agents(ctx, 4)
    ctx.sim.run(until=60.0)
    head0, head3 = agents[0], agents[3]
    assert head3.node_id in head0.head.qdset
    assert head0.node_id in head3.head.qdset


def test_replicas_exchanged_between_adjacent_heads():
    ctx = make_ctx()
    agents = line_agents(ctx, 4)
    ctx.sim.run(until=60.0)
    head0, head3 = agents[0], agents[3]
    replica_of_3 = head0.head.replicas.get(head3.node_id)
    replica_of_0 = head3.head.replicas.get(head0.node_id)
    assert replica_of_3 is not None and replica_of_0 is not None
    assert replica_of_3.covers(head3.ip)
    assert replica_of_0.covers(head0.ip)


def test_replica_sizes_mirror_pools():
    ctx = make_ctx()
    agents = line_agents(ctx, 4)
    ctx.sim.run(until=60.0)
    head0, head3 = agents[0], agents[3]
    assert (head0.head.replicas.get(head3.node_id).size()
            == head3.head.pool.total_count())


def test_quorum_space_extends_ip_space():
    ctx = make_ctx()
    agents = line_agents(ctx, 4)
    ctx.sim.run(until=60.0)
    head3 = agents[3]
    assert head3.head.quorum_space_size() > 0
    assert head3.head.extension_ratio() > 1.0


def test_long_chain_configures_fully_and_uniquely():
    ctx = make_ctx()
    agents = line_agents(ctx, 10)
    ctx.sim.run(until=160.0)
    assert all(a.is_configured() for a in agents)
    assert_unique_addresses(agents)
    heads = [a for a in agents if a.role is Role.HEAD]
    # A 10-node chain at 1 hop spacing forms heads roughly every 3 hops.
    assert 3 <= len(heads) <= 5


def test_head_latency_includes_proposal_legs():
    ctx = make_ctx()
    agents = line_agents(ctx, 4)
    ctx.sim.run(until=60.0)
    head3 = agents[3]
    # CH_REQ(3) + CH_PRP(3) + CH_CNF(3) + CH_CFG(3) = 12, quorum
    # short-circuited by linear voting (empty QDSet at grant time).
    assert head3.config_latency_hops == 12
