"""Network initialization: the first node and the T_e/Max_r procedure."""

from repro.cluster.roles import Role
from repro.core import ProtocolConfig

from tests.helpers import add_node, make_ctx


def test_first_node_becomes_head_with_whole_space():
    ctx = make_ctx()
    cfg = ProtocolConfig(address_space_bits=6)
    agent = add_node(ctx, 0, 500.0, cfg=cfg)
    agent.on_enter()
    ctx.sim.run(until=30.0)
    assert agent.role is Role.HEAD
    assert agent.ip == 0
    assert agent.head is not None
    # Whole space minus its own address is free.
    assert agent.head.pool.free_count() == 63
    assert agent.network_id is not None


def test_first_node_waits_te_times_max_r():
    ctx = make_ctx()
    cfg = ProtocolConfig(te=1.0, max_r=3)
    agent = add_node(ctx, 0, 500.0, cfg=cfg)
    ctx.sim.schedule(0.0, agent.on_enter)
    ctx.sim.run(until=1.5)
    assert not agent.is_configured()  # still broadcasting INIT_REQ
    ctx.sim.run(until=30.0)
    assert agent.is_configured()
    # Configured only after (max_r - 1) retry periods.
    assert agent.configured_at >= (cfg.max_r - 1) * cfg.te


def test_two_simultaneous_entrants_produce_one_network():
    """INIT_DEFER: the later entrant backs off, then joins the earlier
    one's network instead of founding its own."""
    ctx = make_ctx()
    cfg = ProtocolConfig()
    a = add_node(ctx, 0, 500.0, cfg=cfg)
    b = add_node(ctx, 1, 560.0, cfg=cfg)  # one hop away
    ctx.sim.schedule(0.1, a.on_enter)
    ctx.sim.schedule(0.2, b.on_enter)
    ctx.sim.run(until=40.0)
    assert a.is_configured() and b.is_configured()
    assert a.network_id == b.network_id
    heads = [x for x in (a, b) if x.role is Role.HEAD]
    assert len(heads) == 1


def test_disconnected_entrants_found_separate_networks():
    ctx = make_ctx()
    cfg = ProtocolConfig(merge_detection_enabled=False)
    a = add_node(ctx, 0, 100.0, cfg=cfg)
    b = add_node(ctx, 1, 900.0, cfg=cfg)  # far out of range
    a.on_enter()
    b.on_enter()
    ctx.sim.run(until=30.0)
    assert a.role is Role.HEAD and b.role is Role.HEAD
    assert a.network_id != b.network_id


def test_init_latency_counts_zero_hops():
    ctx = make_ctx()
    agent = add_node(ctx, 0, 500.0)
    agent.on_enter()
    ctx.sim.run(until=30.0)
    assert agent.config_latency_hops == 0
