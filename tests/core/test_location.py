"""Location update for mobile common nodes (Section IV-C-1)."""

from repro.core import ProtocolConfig
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net.stats import Category

from tests.helpers import line_agents, make_ctx


def test_no_updates_while_near_configurer():
    ctx = make_ctx()
    agents = line_agents(ctx, 2)
    ctx.sim.run(until=60.0)
    assert ctx.stats.hops[Category.MOVEMENT] == 0
    assert agents[1].common.administrator_id is None


def test_update_loc_after_moving_beyond_three_hops():
    ctx = make_ctx()
    agents = line_agents(ctx, 8)  # heads form every ~3 hops
    ctx.sim.run(until=130.0)
    mover = agents[1]
    assert mover.common is not None
    configurer = mover.common.configurer_id
    # Teleport the mover to the far end of the chain (>3 hops away).
    mover.node.mobility = Stationary(Point(100.0 + 120.0 * 7, 500.0))
    ctx.topology.invalidate()
    ctx.sim.run(until=ctx.sim.now + 15.0)
    assert ctx.stats.hops[Category.MOVEMENT] > 0
    administrator = mover.common.administrator_id
    assert administrator is not None
    assert administrator != configurer
    hops = ctx.topology.hops(mover.node_id, administrator)
    assert hops is not None and hops <= 3


def test_administrator_recorded_at_head():
    ctx = make_ctx()
    agents = line_agents(ctx, 8)
    ctx.sim.run(until=130.0)
    mover = agents[1]
    mover.node.mobility = Stationary(Point(100.0 + 120.0 * 7, 500.0))
    ctx.topology.invalidate()
    ctx.sim.run(until=ctx.sim.now + 15.0)
    admin = ctx.agent_of(mover.common.administrator_id)
    assert mover.common.ip in admin.head.administered
    node_id, configurer_ip = admin.head.administered[mover.common.ip]
    assert node_id == mover.node_id
    assert configurer_ip == mover.common.configurer_ip


def test_upon_leave_mode_sends_no_location_updates():
    ctx = make_ctx()
    cfg = ProtocolConfig(location_update_mode="upon_leave")
    agents = line_agents(ctx, 8, cfg=cfg)
    ctx.sim.run(until=130.0)
    mover = agents[1]
    mover.node.mobility = Stationary(Point(100.0 + 120.0 * 7, 500.0))
    ctx.topology.invalidate()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    assert ctx.stats.hops[Category.MOVEMENT] == 0


def test_departure_after_migration_routes_address_home():
    """A node that migrated away returns its address via its current
    nearest head; the address ends up free at the original allocator."""
    ctx = make_ctx()
    agents = line_agents(ctx, 8)
    ctx.sim.run(until=130.0)
    mover = agents[1]
    allocator = ctx.agent_of(mover.common.configurer_id)
    address = mover.ip
    mover.node.mobility = Stationary(Point(100.0 + 120.0 * 7, 500.0))
    ctx.topology.invalidate()
    ctx.sim.run(until=ctx.sim.now + 15.0)
    mover.depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    assert allocator.head.pool.is_free(address)
