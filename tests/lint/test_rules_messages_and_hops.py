"""frozen-message and hop-bound rules."""


# --- frozen-message --------------------------------------------------


def test_unfrozen_unslotted_dataclass_two_findings(tree):
    tree.write("src/repro/net/message.py", """\
        import dataclasses

        @dataclasses.dataclass
        class Message:
            mtype: str
        """)
    findings = tree.findings(select={"frozen-message"})
    assert len(findings) == 2
    assert {"frozen" in f.message or "slotted" in f.message
            for f in findings} == {True}


def test_frozen_with_slots_kwarg_clean(tree):
    tree.write("src/repro/net/message.py", """\
        import dataclasses

        @dataclasses.dataclass(frozen=True, slots=True)
        class Message:
            mtype: str
        """)
    assert tree.findings(select={"frozen-message"}) == []


def test_frozen_with_body_slots_clean(tree):
    tree.write("src/repro/core/messages.py", """\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Envelope:
            __slots__ = ("mtype",)
            mtype: str
        """)
    assert tree.findings(select={"frozen-message"}) == []


def test_frozen_with_add_slots_decorator_clean(tree):
    tree.write("src/repro/net/message.py", """\
        import dataclasses

        def slotted(cls):
            return cls

        @slotted
        @dataclasses.dataclass(frozen=True)
        class Message:
            mtype: str
        """)
    assert tree.findings(select={"frozen-message"}) == []


def test_frozen_only_flags_missing_slots(tree):
    tree.write("src/repro/net/message.py", """\
        import dataclasses

        @dataclasses.dataclass(frozen=True)
        class Message:
            mtype: str
        """)
    findings = tree.findings(select={"frozen-message"})
    assert len(findings) == 1
    assert "slotted" in findings[0].message


def test_dataclasses_outside_message_modules_out_of_scope(tree):
    tree.write("src/repro/experiments/metrics.py", """\
        import dataclasses

        @dataclasses.dataclass
        class RunResult:
            value: int
        """)
    assert tree.findings(select={"frozen-message"}) == []


def test_plain_class_in_message_module_ignored(tree):
    tree.write("src/repro/net/message.py", """\
        class Helper:
            pass
        """)
    assert tree.findings(select={"frozen-message"}) == []


def test_frozen_message_file_suppression(tree):
    tree.write("src/repro/net/message.py", """\
        # repro-lint: disable=frozen-message
        import dataclasses

        @dataclasses.dataclass
        class Message:
            mtype: str
        """)
    assert tree.findings(select={"frozen-message"}) == []


# --- hop-bound -------------------------------------------------------


def test_unbounded_queries_flagged(tree):
    tree.write("src/repro/core/bad.py", """\
        def scan(topo, a, b):
            topo.hops(a, b)
            topo.reachable(a)
        """)
    findings = tree.findings(select={"hop-bound"})
    assert len(findings) == 2
    assert all(f.rule == "hop-bound" for f in findings)


def test_explicit_bounds_clean(tree):
    tree.write("src/repro/core/good.py", """\
        def scan(topo, a, b, k):
            topo.hops(a, b, 4)
            topo.hops(a, b, max_hops=None)
            topo.reachable(a, max_hops=2)
            topo.reachable(a, max_hops=None)
            topo.within_hops(a, k)
            topo.within_hops(a, k=2)
        """)
    assert tree.findings(select={"hop-bound"}) == []


def test_hop_bound_applies_outside_repro_modules_too(tree):
    tree.write("examples/demo.py", """\
        def scan(topo, a):
            return topo.reachable(a)
        """)
    assert len(tree.findings(select={"hop-bound"})) == 1


def test_oracle_module_exempt(tree):
    tree.write("src/repro/net/oracle.py", """\
        class OracleTopology:
            def eccentricity(self, a):
                return max(self.reachable(a).values())
        """)
    assert tree.findings(select={"hop-bound"}) == []


def test_unrelated_attributes_not_flagged(tree):
    tree.write("src/repro/core/good.py", """\
        def stats(result):
            return result.avg_config_latency_hops(), result.stats_hops
        """)
    assert tree.findings(select={"hop-bound"}) == []


def test_hop_bound_line_suppression(tree):
    tree.write("src/repro/core/bad.py", """\
        def scan(topo, a):
            return topo.reachable(a)  # repro-lint: disable=hop-bound
        """)
    assert tree.findings(select={"hop-bound"}) == []
