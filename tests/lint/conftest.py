"""Shared fixtures: build throwaway ``src/repro/...`` trees and lint them.

Rule tests write inline fixture snippets into a tmp tree laid out like
the real repo (so module inference kicks in), then run one rule — or
the whole suite — over it.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint


class LintTree:
    """A scratch checkout-shaped directory to lint."""

    def __init__(self, root: Path) -> None:
        self.root = root

    def write(self, relpath: str, source: str) -> Path:
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    def lint(self, select=None, ignore=None, baseline=None):
        report = run_lint([self.root], select=select, ignore=ignore,
                          baseline=baseline, root=self.root)
        return report

    def findings(self, select=None):
        return list(self.lint(select=select).findings)


@pytest.fixture
def tree(tmp_path):
    return LintTree(tmp_path)
