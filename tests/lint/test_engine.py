"""Engine mechanics: module inference, suppression, baselines, reports."""

from pathlib import Path

import pytest

from repro.lint import Baseline, Finding, Severity, resolve_rules, run_lint
from repro.lint.engine import module_name_for


# --- module inference -------------------------------------------------


@pytest.mark.parametrize("path,expected", [
    ("src/repro/core/state.py", "repro.core.state"),
    ("src/repro/net/__init__.py", "repro.net"),
    ("src/repro/__init__.py", "repro"),
    ("/tmp/x/src/repro/sim/rng.py", "repro.sim.rng"),
    ("examples/demo.py", None),
    ("benchmarks/bench_topology.py", None),
])
def test_module_name_for(path, expected):
    assert module_name_for(Path(path)) == expected


# --- suppression scope ------------------------------------------------


def test_line_suppression_only_covers_its_line(tree):
    tree.write("src/repro/core/bad.py", """\
        import time

        a = time.time()  # repro-lint: disable=determinism
        b = time.time()
        """)
    findings = tree.findings(select={"determinism"})
    assert [f.line for f in findings] == [4]


def test_file_suppression_is_per_rule(tree):
    tree.write("src/repro/core/bad.py", """\
        # repro-lint: disable=determinism
        import time
        import numpy

        a = time.time()
        """)
    report = tree.lint(select={"determinism", "no-oracle-import"})
    assert [f.rule for f in report.findings] == ["no-oracle-import"]


def test_one_directive_many_rules(tree):
    tree.write("src/repro/core/bad.py", """\
        # repro-lint: disable=determinism, no-oracle-import
        import time
        import numpy

        a = time.time()
        """)
    assert tree.findings() == []


# --- rule resolution --------------------------------------------------


def test_resolve_rules_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        resolve_rules(select={"no-such-rule"})
    with pytest.raises(ValueError, match="no-such-rule"):
        resolve_rules(ignore={"no-such-rule"})


def test_resolve_rules_select_and_ignore_compose():
    names = [r.name for r in
             resolve_rules(select={"send-api", "hop-bound"},
                           ignore={"hop-bound"})]
    assert names == ["send-api"]


# --- reports ----------------------------------------------------------


def test_parse_error_reported_and_exit_2(tree):
    tree.write("src/repro/core/broken.py", "def broken(:\n")
    report = tree.lint()
    assert report.findings == ()
    assert len(report.parse_errors) == 1
    assert "broken.py" in report.parse_errors[0]
    assert report.exit_code() == 2
    assert "parse error" in report.render_text()


def test_exit_codes_warning_vs_error(tree):
    tree.write("src/repro/quorum/bad.py", "half = 10 // 2\n")
    report = tree.lint(select={"quorum-arith"})
    assert not report.has_errors()
    assert report.exit_code() == 0
    assert report.exit_code(strict=True) == 1

    tree.write("src/repro/core/bad.py", "import numpy\n")
    report = tree.lint()
    assert report.has_errors()
    assert report.exit_code() == 1


def test_render_text_summary_and_counts(tree):
    tree.write("src/repro/core/bad.py", """\
        import time

        a = time.time()
        b = time.monotonic()
        """)
    report = tree.lint(select={"determinism"})
    text = report.render_text()
    assert "1 files scanned, 1 rules, 2 findings" in text
    assert "[determinism=2]" in text
    assert report.counts_by_rule() == {"determinism": 2}
    lines = text.splitlines()
    assert lines[0].startswith("src/repro/core/bad.py:3:")
    assert "error[determinism]" in lines[0]


def test_findings_sorted_by_path_then_line(tree):
    tree.write("src/repro/net/zbad.py", "import numpy\n")
    tree.write("src/repro/core/abad.py", """\
        import time
        x = time.time()
        """)
    report = tree.lint()
    paths = [f.path for f in report.findings]
    assert paths == sorted(paths)


# --- baselines --------------------------------------------------------


def _keys(findings):
    return sorted(f.baseline_key() for f in findings)


def test_baseline_roundtrip_and_split(tree, tmp_path):
    tree.write("src/repro/core/bad.py", """\
        import time

        a = time.time()
        """)
    first = tree.lint(select={"determinism"})
    assert len(first.findings) == 1

    baseline = Baseline.from_findings(first.findings)
    path = tmp_path / "baseline.json"
    baseline.dump(path)
    reloaded = Baseline.load(path)
    assert len(reloaded) == 1

    second = tree.lint(select={"determinism"}, baseline=reloaded)
    assert second.findings == ()
    assert len(second.baselined) == 1
    assert second.exit_code() == 0


def test_baseline_survives_line_drift(tree, tmp_path):
    tree.write("src/repro/core/bad.py", """\
        import time

        a = time.time()
        """)
    baseline = Baseline.from_findings(
        tree.lint(select={"determinism"}).findings)

    # Shift the offending line down; the key is line text, not number.
    tree.write("src/repro/core/bad.py", """\
        import time

        PAD = 1
        PAD2 = 2
        a = time.time()
        """)
    report = tree.lint(select={"determinism"}, baseline=baseline)
    assert report.findings == ()
    assert len(report.baselined) == 1


def test_baseline_is_a_multiset(tree, tmp_path):
    tree.write("src/repro/core/bad.py", """\
        import time

        a = time.time()
        """)
    baseline = Baseline.from_findings(
        tree.lint(select={"determinism"}).findings)

    # A second identical occurrence only gets one baseline slot.
    tree.write("src/repro/core/bad.py", """\
        import time

        a = time.time()
        b = time.time()
        """)
    report = tree.lint(select={"determinism"}, baseline=baseline)
    assert len(report.baselined) == 1
    assert len(report.findings) == 1
    assert report.exit_code() == 1


def test_baseline_load_rejects_unknown_schema(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"schema": 99, "findings": []}')
    with pytest.raises(ValueError, match="unsupported baseline schema"):
        Baseline.load(path)


# --- report JSON ------------------------------------------------------


def test_report_to_json_schema(tree):
    tree.write("src/repro/core/bad.py", """\
        import time

        a = time.time()
        """)
    payload = tree.lint(select={"determinism"}).to_json()
    assert set(payload) == {"schema", "rules", "files_scanned", "findings",
                            "baselined", "counts", "parse_errors"}
    assert payload["schema"] == 1
    assert payload["rules"] == ["determinism"]
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "severity", "path", "line", "col",
                            "message", "line_text"}
    assert finding["severity"] == "error"
    assert finding["line_text"] == "a = time.time()"
