"""End-to-end ``repro lint`` CLI behavior (exit codes, formats, baseline)."""

import json

import pytest

from repro import cli as repro_cli
from repro.lint import cli as lint_cli
from repro.lint.rules import ALL_RULES

BAD_DETERMINISM = """\
import time

def stamp():
    return time.time()
"""

BAD_QUORUM = """\
def half(n):
    return n // 2
"""

CLEAN = """\
def stamp(ctx):
    return ctx.sim.now
"""


@pytest.fixture
def checkout(tree, monkeypatch):
    """A scratch checkout the CLI scans via its default roots."""
    monkeypatch.chdir(tree.root)
    return tree


def lint(*argv):
    return repro_cli.main(["lint", *argv])


def test_clean_tree_exits_zero(checkout, capsys):
    checkout.write("src/repro/core/good.py", CLEAN)
    assert lint() == 0
    out = capsys.readouterr().out
    assert "1 files scanned, 16 rules, 0 findings" in out


def test_findings_exit_one_with_rendered_lines(checkout, capsys):
    checkout.write("src/repro/core/bad.py", BAD_DETERMINISM)
    assert lint() == 1
    out = capsys.readouterr().out
    assert "src/repro/core/bad.py:4:" in out
    assert "error[determinism]" in out


def test_select_and_ignore(checkout, capsys):
    checkout.write("src/repro/core/bad.py", BAD_DETERMINISM)
    assert lint("--select", "send-api") == 0
    assert lint("--ignore", "determinism") == 0
    assert lint("--select", "determinism") == 1
    capsys.readouterr()


def test_warnings_pass_unless_strict(checkout, capsys):
    checkout.write("src/repro/quorum/bad.py", BAD_QUORUM)
    assert lint() == 0
    assert lint("--strict") == 1
    capsys.readouterr()


def test_json_format_schema(checkout, capsys):
    checkout.write("src/repro/core/bad.py", BAD_DETERMINISM)
    assert lint("--format", "json") == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == 1
    assert payload["files_scanned"] == 1
    assert payload["counts"] == {"determinism": 1}
    assert payload["parse_errors"] == []
    (finding,) = payload["findings"]
    assert finding["rule"] == "determinism"
    assert finding["severity"] == "error"
    assert finding["path"] == "src/repro/core/bad.py"
    assert finding["line"] == 4
    assert finding["line_text"] == "return time.time()"


def test_out_writes_artifact(checkout, capsys, tmp_path):
    checkout.write("src/repro/core/bad.py", BAD_DETERMINISM)
    artifact = tmp_path / "lint-findings.json"
    assert lint("--out", str(artifact)) == 1
    payload = json.loads(artifact.read_text())
    assert payload["counts"] == {"determinism": 1}
    # stdout stays in text format
    assert "error[determinism]" in capsys.readouterr().out


def test_json_out_alias_still_accepted(checkout, capsys, tmp_path):
    # --json-out is the deprecated spelling of --out (kept for CI
    # scripts written against the old flag; see docs/API.md).
    checkout.write("src/repro/core/bad.py", BAD_DETERMINISM)
    artifact = tmp_path / "lint-findings.json"
    assert lint("--json-out", str(artifact)) == 1
    assert json.loads(artifact.read_text())["counts"] == {"determinism": 1}
    capsys.readouterr()


def test_explicit_paths_override_default_roots(checkout, capsys):
    checkout.write("src/repro/core/bad.py", BAD_DETERMINISM)
    checkout.write("src/repro/net/good.py", CLEAN)
    assert lint("src/repro/net") == 0
    capsys.readouterr()


def test_list_rules(checkout, capsys):
    assert lint("--list-rules") == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.name in out
    assert "error" in out and "warning" in out


def test_unknown_rule_rejected(checkout, capsys):
    with pytest.raises(SystemExit):
        lint("--select", "no-such-rule")
    capsys.readouterr()


def test_parse_error_exits_two(checkout, capsys):
    checkout.write("src/repro/core/broken.py", "def broken(:\n")
    assert lint() == 2
    assert "parse error" in capsys.readouterr().out


def test_missing_baseline_exits_two(checkout, capsys):
    checkout.write("src/repro/core/good.py", CLEAN)
    assert lint("--baseline", "no-such-baseline.json") == 2
    assert "not found" in capsys.readouterr().err


def test_write_then_compare_baseline_cycle(checkout, capsys, tmp_path):
    checkout.write("src/repro/core/bad.py", BAD_DETERMINISM)
    baseline = tmp_path / "lint-baseline.json"

    assert lint("--write-baseline", str(baseline)) == 0
    assert "wrote baseline with 1 finding(s)" in capsys.readouterr().out
    payload = json.loads(baseline.read_text())
    assert payload["schema"] == 1
    assert payload["findings"][0]["rule"] == "determinism"

    # Same tree + baseline: known finding is reported but tolerated.
    assert lint("--baseline", str(baseline)) == 0
    assert "(1 baselined)" in capsys.readouterr().out

    # A new finding on top of the baseline still fails.
    checkout.write("src/repro/net/bad.py", BAD_DETERMINISM)
    assert lint("--baseline", str(baseline)) == 1
    capsys.readouterr()


def test_standalone_module_entry_point(checkout, capsys):
    checkout.write("src/repro/core/bad.py", BAD_DETERMINISM)
    assert lint_cli.main(["--select", "determinism"]) == 1
    assert "error[determinism]" in capsys.readouterr().out
