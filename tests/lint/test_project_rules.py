"""Positive/negative fixtures for the five cross-module rules.

Each test writes a tmp ``src/repro/...`` tree shaped like the real
checkout and runs one project rule over it via the shared ``tree``
fixture (``run_lint`` with the whole-program pass on, which is the
default).
"""


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# state-machine
# ---------------------------------------------------------------------------

def test_state_machine_flags_illegal_transition(tree):
    # COM_ACK is a pure sink in the spec: its handler may send nothing.
    # Injecting a COM_REQ send out of it is the canonical illegal
    # transition the rule exists to catch.
    tree.write("src/repro/core/agent.py", """\
        import repro.core.messages as m

        class Agent:
            def _handle_com_ack(self, msg):
                self._send(msg.src, m.COM_REQ)
        """)
    findings = tree.findings(select={"state-machine"})
    assert len(findings) == 1
    assert "may send COM_REQ" in findings[0].message
    assert "COM_ACK" in findings[0].message
    assert findings[0].path == "src/repro/core/agent.py"


def test_state_machine_catches_send_through_helper(tree):
    # The illegal send sits two helpers deep — only the transitive
    # closure sees it.
    tree.write("src/repro/core/agent.py", """\
        import repro.core.messages as m

        class Agent:
            def _handle_quorum_upd(self, msg):
                self._apply(msg)

            def _apply(self, msg):
                self._escalate(msg)

            def _escalate(self, msg):
                self._send(msg.src, m.COM_CFG)
        """)
    findings = tree.findings(select={"state-machine"})
    assert len(findings) == 1
    assert "may send COM_CFG" in findings[0].message


def test_state_machine_accepts_legal_transitions(tree):
    tree.write("src/repro/core/agent.py", """\
        import repro.core.messages as m

        class Agent:
            def _handle_quorum_clt(self, msg):
                self._send(msg.src, m.QUORUM_CFM)

            def _handle_com_cfg(self, msg):
                ack = m.COM_ACK if msg.ok else m.COM_DECLINE
                self._send(msg.src, ack)
        """)
    assert tree.findings(select={"state-machine"}) == []


def test_state_machine_flags_unknown_message_handler(tree):
    tree.write("src/repro/core/agent.py", """\
        class Agent:
            def _handle_bogus_msg(self, msg):
                pass
        """)
    findings = tree.findings(select={"state-machine"})
    assert len(findings) == 1
    assert "unknown protocol message 'BOGUS_MSG'" in findings[0].message


def test_state_machine_ignores_packages_outside_protocol(tree):
    # Baselines implement *other* papers' protocols; their handlers are
    # not governed by this spec.
    tree.write("src/repro/baselines/dad.py", """\
        import repro.core.messages as m

        class DadAgent:
            def _handle_com_ack(self, msg):
                self._send(msg.src, m.COM_REQ)
        """)
    assert tree.findings(select={"state-machine"}) == []


def test_project_findings_honor_suppressions(tree):
    tree.write("src/repro/core/agent.py", """\
        # repro-lint: disable=state-machine
        import repro.core.messages as m

        class Agent:
            def _handle_com_ack(self, msg):
                self._send(msg.src, m.COM_REQ)
        """)
    assert tree.findings(select={"state-machine"}) == []


def test_no_project_skips_whole_program_pass(tree):
    tree.write("src/repro/core/agent.py", """\
        import repro.core.messages as m

        class Agent:
            def _handle_com_ack(self, msg):
                self._send(msg.src, m.COM_REQ)
        """)
    from repro.lint import run_lint
    report = run_lint([tree.root], root=tree.root, project=False)
    assert report.findings == ()
    assert "state-machine" not in report.rule_names


# ---------------------------------------------------------------------------
# obs-coverage
# ---------------------------------------------------------------------------

def test_obs_coverage_flags_undeclared_emitter(tree):
    # ConfigCommitted may only be constructed by repro.core.protocol.
    tree.write("src/repro/experiments/report.py", """\
        import repro.obs.events as ev

        def summarize(bus, run):
            bus.emit(ev.ConfigCommitted(t=run.t, node=0))
        """)
    findings = tree.findings(select={"obs-coverage"})
    assert len(findings) == 1
    assert "ConfigCommitted is constructed outside" in findings[0].message
    assert findings[0].path == "src/repro/experiments/report.py"


def test_obs_coverage_accepts_declared_emitter(tree):
    tree.write("src/repro/core/protocol.py", """\
        import repro.obs.events as ev

        class Agent:
            def _emit(self, bus):
                bus.emit(ev.ConfigCommitted(t=0.0, node=0))
        """)
    assert tree.findings(select={"obs-coverage"}) == []


def test_obs_coverage_reports_never_emitted_events(tree):
    # With the events module in the graph but no emitters anywhere,
    # every spec'd event is dead instrumentation.
    tree.write("src/repro/obs/events.py", """\
        class ConfigCommitted:
            pass
        """)
    findings = tree.findings(select={"obs-coverage"})
    assert findings, "expected never-emitted findings"
    assert all("never emitted" in f.message for f in findings)
    committed = [f for f in findings
                 if "event ConfigCommitted" in f.message]
    # The anchor is the class definition when the class exists.
    assert committed and committed[0].line == 1


def test_obs_coverage_checks_terminal_path_emissions(tree):
    # _abort_attempt must emit exactly {ConfigAborted}; emitting
    # ConfigCompleted instead is one missing + one extra finding.
    tree.write("src/repro/core/protocol.py", """\
        import repro.obs.events as ev

        class QuorumProtocolAgent:
            def _abort_attempt(self, bus):
                bus.emit(ev.ConfigCompleted(t=0.0, node=0))
        """)
    findings = [f for f in tree.findings(select={"obs-coverage"})
                if "_abort_attempt" in f.message]
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert "never emits ConfigAborted" in messages[1]
    assert "emits ConfigCompleted" in messages[0]


def test_obs_coverage_terminal_path_clean_when_exact(tree):
    # Every terminal path the spec assigns, emitting exactly its
    # assigned terminal set.
    tree.write("src/repro/core/protocol.py", """\
        import repro.obs.events as ev

        class QuorumProtocolAgent:
            def _commit_common(self, bus, ok):
                if ok:
                    bus.emit(ev.ConfigCommitted(t=0.0, node=0))
                else:
                    bus.emit(ev.ConfigAborted(t=0.0, node=0, reason="x"))

            def _commit_head(self, bus, ok):
                self._commit_common(bus, ok)

            def _abort_attempt(self, bus, reason):
                bus.emit(ev.ConfigAborted(t=0.0, node=0, reason=reason))

            def _on_config_timeout(self, bus, late):
                if late:
                    bus.emit(ev.ConfigCompleted(t=0.0, node=0))
                else:
                    bus.emit(ev.ConfigTimeout(t=0.0, node=0))

            def _on_vote_timeout(self, bus):
                bus.emit(ev.VoteTimeout(t=0.0, node=0))
                self._abort_attempt(bus, "vote-timeout")

            def _handle_com_cfg(self, bus, msg):
                bus.emit(ev.ConfigCompleted(t=0.0, node=0))

            def _handle_ch_cfg(self, bus, msg):
                bus.emit(ev.ConfigCompleted(t=0.0, node=0))
        """)
    assert tree.findings(select={"obs-coverage"}) == []


# ---------------------------------------------------------------------------
# rng-taint
# ---------------------------------------------------------------------------

def test_rng_taint_flags_foreign_stream_consumption(tree):
    # ``faults.*`` streams belong to repro.faults.
    tree.write("src/repro/experiments/run.py", """\
        def drive(ctx):
            rng = ctx.streams.get("faults.drop")
            return rng.random()
        """)
    findings = tree.findings(select={"rng-taint"})
    assert len(findings) == 1
    assert "belongs to repro.faults" in findings[0].message


def test_rng_taint_accepts_owned_stream(tree):
    tree.write("src/repro/faults/model.py", """\
        def arm(ctx, link):
            rng = ctx.streams.get(f"faults.drop.{link}")
            return rng
        """)
    tree.write("src/repro/experiments/scenario.py", """\
        def build(ctx):
            return ctx.streams.get("scenario")
        """)
    assert tree.findings(select={"rng-taint"}) == []


def test_rng_taint_flags_unowned_stream_name(tree):
    tree.write("src/repro/experiments/run.py", """\
        def drive(ctx):
            return ctx.streams.get("mystery-stream")
        """)
    findings = tree.findings(select={"rng-taint"})
    assert len(findings) == 1
    assert "no declared owner" in findings[0].message


def test_rng_taint_flags_undeclared_generator_flow(tree):
    tree.write("src/repro/net/grid.py", """\
        def build(rng):
            return rng
        """)
    tree.write("src/repro/experiments/run.py", """\
        from repro.net import grid
        from repro.sim.rng import generator_from_seed

        def drive(seed):
            gen = generator_from_seed(seed)
            return grid.build(gen)
        """)
    findings = tree.findings(select={"rng-taint"})
    assert len(findings) == 1
    assert "flows from repro.experiments into repro.net" in \
        findings[0].message


def test_rng_taint_accepts_declared_generator_flow(tree):
    # (repro.experiments, repro.mobility) is a declared flow: the
    # scenario layer drives mobility models with per-node streams.
    tree.write("src/repro/mobility/walk.py", """\
        def step(rng):
            return rng
        """)
    tree.write("src/repro/experiments/run.py", """\
        from repro.mobility import walk
        from repro.sim.rng import generator_from_seed

        def drive(seed):
            gen = generator_from_seed(seed)
            return walk.step(gen)
        """)
    assert tree.findings(select={"rng-taint"}) == []


def test_rng_taint_flags_generator_into_cache_key(tree):
    tree.write("src/repro/experiments/cache.py", """\
        import hashlib

        from repro.sim.rng import generator_from_seed

        def key(seed):
            gen = generator_from_seed(seed)
            return hashlib.sha256(gen).hexdigest()
        """)
    findings = tree.findings(select={"rng-taint"})
    assert len(findings) == 1
    assert "cache-key" in findings[0].message


# ---------------------------------------------------------------------------
# counter-registry
# ---------------------------------------------------------------------------

REGISTRY = """\
    BFS_CALLS = "bfs_calls"
    TIMER_TOPOLOGY_BFS = "topology.bfs"
    """


def test_counter_registry_flags_unregistered_literal(tree):
    tree.write("src/repro/perf/counters.py", REGISTRY)
    tree.write("src/repro/net/grid.py", """\
        class Grid:
            def walk(self):
                self.perf.incr("bfs_calls")
                self.perf.incr("bfs_callz")
        """)
    findings = tree.findings(select={"counter-registry"})
    assert len(findings) == 1
    assert "'bfs_callz'" in findings[0].message


def test_counter_registry_flags_dynamic_names(tree):
    tree.write("src/repro/perf/counters.py", REGISTRY)
    tree.write("src/repro/net/grid.py", """\
        class Grid:
            def walk(self, shard):
                self.perf.incr(f"bfs_calls_{shard}")
        """)
    findings = tree.findings(select={"counter-registry"})
    assert len(findings) == 1
    assert "built dynamically" in findings[0].message


def test_counter_registry_checks_timers_separately(tree):
    tree.write("src/repro/perf/counters.py", REGISTRY)
    tree.write("src/repro/net/grid.py", """\
        class Grid:
            def walk(self, ctx):
                with ctx.perf.timer("topology.bfs"):
                    pass
                with ctx.perf.timer("bfs_calls"):
                    pass
        """)
    findings = tree.findings(select={"counter-registry"})
    # "bfs_calls" is a counter name, not a timer name.
    assert len(findings) == 1
    assert "timer('bfs_calls')" in findings[0].message


def test_counter_registry_silent_without_registry_module(tree):
    # Fixture trees (and partial scans) without repro.perf.counters
    # must not drown in false positives.
    tree.write("src/repro/net/grid.py", """\
        class Grid:
            def walk(self):
                self.perf.incr("anything_goes")
        """)
    assert tree.findings(select={"counter-registry"}) == []


# ---------------------------------------------------------------------------
# metric-registry
# ---------------------------------------------------------------------------

METRIC_REGISTRY = """\
    AGENTS_LIVE = "agents_live"
    MSGS_PREFIX = "msgs_"
    """


def test_metric_registry_flags_unregistered_literal(tree):
    tree.write("src/repro/obs/metric_names.py", METRIC_REGISTRY)
    tree.write("src/repro/obs/sampler.py", """\
        class Sampler:
            def sample(self):
                self.metrics.record("agents_live", 1)
                self.metrics.record("agents_alive", 1)
        """)
    findings = tree.findings(select={"metric-registry"})
    assert len(findings) == 1
    assert "'agents_alive'" in findings[0].message


def test_metric_registry_prefixes_are_not_sampleable_names(tree):
    # ``*_PREFIX`` constants are family stems for the helper functions;
    # recording one directly is a registry miss.
    tree.write("src/repro/obs/metric_names.py", METRIC_REGISTRY)
    tree.write("src/repro/obs/sampler.py", """\
        class Sampler:
            def sample(self):
                self.metrics.record("msgs_", 1)
        """)
    findings = tree.findings(select={"metric-registry"})
    assert len(findings) == 1


def test_metric_registry_flags_dynamic_names(tree):
    tree.write("src/repro/obs/metric_names.py", METRIC_REGISTRY)
    tree.write("src/repro/obs/sampler.py", """\
        class Sampler:
            def sample(self, role):
                self.metrics.record(f"role_{role}", 1)
        """)
    findings = tree.findings(select={"metric-registry"})
    assert len(findings) == 1
    assert "built dynamically" in findings[0].message


def test_metric_registry_accepts_helper_built_names(tree):
    # Non-literal first arguments (helper calls, constants) pass: the
    # helpers append to registered prefixes.
    tree.write("src/repro/obs/metric_names.py", METRIC_REGISTRY)
    tree.write("src/repro/obs/sampler.py", """\
        from repro.obs.metric_names import AGENTS_LIVE, msg_metric

        class Sampler:
            def sample(self, category):
                self.metrics.record(AGENTS_LIVE, 1)
                self.metrics.record(msg_metric(category), 1)
        """)
    assert tree.findings(select={"metric-registry"}) == []


def test_metric_registry_silent_without_registry_module(tree):
    tree.write("src/repro/obs/sampler.py", """\
        class Sampler:
            def sample(self):
                self.metrics.record("anything_goes", 1)
        """)
    assert tree.findings(select={"metric-registry"}) == []


# ---------------------------------------------------------------------------
# layering
# ---------------------------------------------------------------------------

def test_layering_flags_upward_import(tree):
    # Foundation (repro.sim, layer 0) must not import the protocol
    # layer (repro.core, layer 3).
    tree.write("src/repro/sim/clock.py", """\
        from repro.core.state import AgentState
        """)
    tree.write("src/repro/core/state.py", """\
        class AgentState:
            pass
        """)
    findings = tree.findings(select={"layering"})
    assert len(findings) == 1
    assert "layer violation" in findings[0].message
    assert "repro.sim.clock (layer 0, foundation)" in findings[0].message


def test_layering_accepts_downward_and_lateral_imports(tree):
    tree.write("src/repro/core/agent.py", """\
        from repro.net.grid import Grid
        from repro.quorum.vote import tally
        """)
    tree.write("src/repro/net/grid.py", """\
        class Grid:
            pass
        """)
    tree.write("src/repro/quorum/vote.py", """\
        def tally():
            pass
        """)
    assert tree.findings(select={"layering"}) == []


def test_layering_detects_import_cycles(tree):
    tree.write("src/repro/net/grid.py", """\
        from repro.obs.bus import Bus
        """)
    tree.write("src/repro/obs/bus.py", """\
        from repro.net.grid import Grid

        class Bus:
            pass
        """)
    findings = tree.findings(select={"layering"})
    assert len(findings) == 1
    assert "import cycle" in findings[0].message
    assert "repro.net.grid -> repro.obs.bus" in findings[0].message


def test_layering_exempts_type_checking_and_lazy_imports(tree):
    tree.write("src/repro/sim/clock.py", """\
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from repro.core.state import AgentState

        def peek():
            from repro.core.state import AgentState
            return AgentState
        """)
    tree.write("src/repro/core/state.py", """\
        class AgentState:
            pass
        """)
    assert tree.findings(select={"layering"}) == []


def test_layering_allows_package_reexport_idiom(tree):
    tree.write("src/repro/net/__init__.py", """\
        from repro.net.grid import Grid
        """)
    tree.write("src/repro/net/grid.py", """\
        class Grid:
            pass
        """)
    assert tree.findings(select={"layering"}) == []
