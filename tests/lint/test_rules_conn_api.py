"""conn-api rule: protocol code must not re-grow the unbounded BFS.

The incremental connectivity layer replaced every
``reachable(..., max_hops=None)`` / ``hops(..., max_hops=None)`` call
in ``repro.core`` / ``repro.quorum`` with O(1)/O(component) label
queries.  The rule keeps it that way; engine, bench, and oracle code
may still flood deliberately.
"""


def test_unbounded_queries_flagged_in_core(tree):
    tree.write("src/repro/core/bad.py", """\
        def scan(topo, nid):
            near = topo.hops(nid, max_hops=None)
            far = topo.reachable(nid, max_hops=None)
            return near, far
        """)
    findings = tree.findings(select={"conn-api"})
    assert len(findings) == 2
    assert [f.line for f in findings] == [2, 3]
    assert "same_component" in findings[0].message


def test_unbounded_queries_flagged_in_quorum(tree):
    tree.write("src/repro/quorum/bad.py", """\
        def members(topo, nid):
            return topo.reachable(nid, max_hops=None)
        """)
    assert len(tree.findings(select={"conn-api"})) == 1


def test_bounded_queries_not_flagged(tree):
    tree.write("src/repro/core/good.py", """\
        def scan(topo, nid, k):
            a = topo.reachable(nid, max_hops=3)
            b = topo.hops(nid, max_hops=k)
            c = topo.reachable(nid)
            return a, b, c
        """)
    assert tree.findings(select={"conn-api"}) == []


def test_label_queries_not_flagged(tree):
    tree.write("src/repro/core/good.py", """\
        def scan(topo, a, b):
            if topo.same_component(a, b):
                return topo.component_members(a)
            return []
        """)
    assert tree.findings(select={"conn-api"}) == []


def test_non_protocol_packages_out_of_scope(tree):
    # The engine's own BFS helpers and bench/oracle code may flood.
    tree.write("src/repro/net/topology_helper.py", """\
        def walk(topo, nid):
            return topo.reachable(nid, max_hops=None)
        """)
    tree.write("src/repro/perf/scale_probe.py", """\
        def walk(topo, nid):
            return topo.reachable(nid, max_hops=None)
        """)
    assert tree.findings(select={"conn-api"}) == []


def test_conn_api_line_suppression(tree):
    tree.write("src/repro/core/oracle_hook.py", """\
        def check(topo, nid):
            return topo.reachable(nid, max_hops=None)  # repro-lint: disable=conn-api
        """)
    assert tree.findings(select={"conn-api"}) == []
