"""Acceptance gate: the real tree is clean under every rule.

This is the test the CI lint job mirrors (``repro lint --strict``):
every rule — per-file and whole-program — over ``src``, ``examples``
and ``benchmarks``, with no baseline.  If a rule fires here, fix the
code — do not baseline it.
"""

from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.project_rules import PROJECT_RULES
from repro.lint.rules import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[2]
SCAN_ROOTS = [REPO_ROOT / name for name in ("src", "examples", "benchmarks")]


def _report():
    return run_lint([p for p in SCAN_ROOTS if p.exists()], root=REPO_ROOT)


def test_repo_parses_cleanly():
    assert _report().parse_errors == ()


def test_repo_is_clean_under_all_rules():
    report = _report()
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == (), f"lint findings:\n{rendered}"
    assert report.exit_code(strict=True) == 0


def test_all_rules_actually_ran():
    report = _report()
    expected = ({rule.name for rule in ALL_RULES}
                | {rule.name for rule in PROJECT_RULES})
    assert set(report.rule_names) == expected
    assert len(report.rule_names) >= 15
    assert report.files_scanned > 50


@pytest.mark.parametrize("rule", ["determinism", "send-api",
                                  "no-oracle-import"])
def test_zero_tolerance_rules_have_no_suppressions(rule):
    """The acceptance criteria forbid even in-source suppressions for
    the determinism / send-api / no-oracle-import invariants."""
    needle = f"repro-lint: disable={rule}"
    offenders = []
    for root in SCAN_ROOTS:
        if not root.exists():
            continue
        for path in root.rglob("*.py"):
            if needle in path.read_text(encoding="utf-8"):
                offenders.append(str(path.relative_to(REPO_ROOT)))
    assert offenders == []
