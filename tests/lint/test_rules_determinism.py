"""determinism rule: wall clocks and global randomness stay out of the
simulation packages."""


def _rules(findings):
    return sorted({f.rule for f in findings})


def test_time_time_flagged_in_core(tree):
    tree.write("src/repro/core/bad.py", """\
        import time

        def stamp() -> float:
            return time.time()
        """)
    findings = tree.findings(select={"determinism"})
    assert len(findings) == 1
    assert findings[0].rule == "determinism"
    assert "time.time" in findings[0].message
    assert findings[0].line == 4


def test_perf_counter_and_aliased_import_flagged(tree):
    tree.write("src/repro/net/bad.py", """\
        import time as clock

        def t() -> float:
            return clock.perf_counter()
        """)
    assert len(tree.findings(select={"determinism"})) == 1


def test_from_import_perf_counter_flagged(tree):
    tree.write("src/repro/sim/bad.py", """\
        from time import perf_counter

        def t() -> float:
            return perf_counter()
        """)
    findings = tree.findings(select={"determinism"})
    # One for the import's binding use; anchored to the call site too.
    assert findings and all(f.rule == "determinism" for f in findings)


def test_module_level_random_flagged(tree):
    tree.write("src/repro/baselines/bad.py", """\
        import random

        def pick(xs):
            return random.choice(xs)
        """)
    findings = tree.findings(select={"determinism"})
    assert len(findings) == 1
    assert "random.choice" in findings[0].message


def test_datetime_now_flagged_both_import_styles(tree):
    tree.write("src/repro/cluster/bad.py", """\
        import datetime
        from datetime import datetime as dt

        def a():
            return datetime.datetime.now()

        def b():
            return dt.now()
        """)
    findings = tree.findings(select={"determinism"})
    assert len(findings) == 2


def test_perf_and_sweep_are_allowlisted(tree):
    source = """\
        import time

        def t() -> float:
            return time.perf_counter()
        """
    tree.write("src/repro/perf/timers.py", source)
    tree.write("src/repro/perf/sub/inner.py", source)
    tree.write("src/repro/experiments/sweep.py", source)
    assert tree.findings(select={"determinism"}) == []


def test_sim_clock_and_stream_usage_not_flagged(tree):
    tree.write("src/repro/core/good.py", """\
        def stamp(ctx) -> float:
            return ctx.sim.now

        def pick(rng, xs):
            return rng.choice(xs)
        """)
    assert tree.findings(select={"determinism"}) == []


def test_non_repro_files_out_of_scope(tree):
    tree.write("examples/demo.py", """\
        import time

        print(time.time())
        """)
    assert tree.findings(select={"determinism"}) == []


def test_line_suppression(tree):
    tree.write("src/repro/core/bad.py", """\
        import time

        def stamp() -> float:
            return time.time()  # repro-lint: disable=determinism
        """)
    assert tree.findings(select={"determinism"}) == []


def test_file_suppression(tree):
    tree.write("src/repro/core/bad.py", """\
        # repro-lint: disable=determinism
        import time

        def stamp() -> float:
            return time.time()

        def stamp2() -> float:
            return time.monotonic()
        """)
    assert tree.findings(select={"determinism"}) == []
