"""The whole-program layer: import tables, symbol tables, call edges.

These tests exercise :mod:`repro.lint.project` directly — the graph the
cross-module rules (tested in ``test_project_rules.py``) are built on.
Fixture trees are laid out ``src/repro/...`` so module-name inference
matches the real checkout.
"""

from repro.lint.engine import iter_python_files, parse_context
from repro.lint.project import (ProjectGraph, package_of,
                                strongly_connected_components)
from repro.lint.project_rules import _Dispatch, send_closure


def build_graph(tree) -> ProjectGraph:
    files = iter_python_files([tree.root])
    return ProjectGraph([parse_context(p, root=tree.root) for p in files])


def test_package_of():
    assert package_of("repro.net.grid") == "repro.net"
    assert package_of("repro.net") == "repro.net"
    assert package_of("repro") == "repro"


def test_import_table_aliases_and_from_imports(tree):
    tree.write("src/repro/core/agent.py", """\
        import repro.core.messages as m
        import repro.sim
        from repro.net.message import Message as Msg

        def f():
            return Msg, m.COM_REQ
        """)
    graph = build_graph(tree)
    mod = graph.module("repro.core.agent")
    assert mod is not None
    assert mod.resolve("m.COM_REQ") == "repro.core.messages.COM_REQ"
    assert mod.resolve("Msg") == "repro.net.message.Message"
    assert mod.resolve("repro.sim.clock") == "repro.sim.clock"
    assert mod.resolve("unknown_name") is None


def test_import_scopes_top_level_vs_gated(tree):
    tree.write("src/repro/core/agent.py", """\
        from typing import TYPE_CHECKING

        import repro.sim

        if TYPE_CHECKING:
            from repro.net.grid import Grid

        def lazily():
            from repro.obs import events
            return events
        """)
    graph = build_graph(tree)
    table = graph.module("repro.core.agent").imports
    assert "repro.sim" in table.top_level
    assert "repro.net.grid" in table.type_checking
    assert "repro.obs" in table.lazy
    assert "repro.net.grid" not in table.top_level
    assert "repro.obs" not in table.top_level


def test_relative_imports_resolve_against_package(tree):
    tree.write("src/repro/net/grid.py", """\
        from . import util
        from .message import Message
        from ..sim import clock
        """)
    graph = build_graph(tree)
    table = graph.module("repro.net.grid").imports
    assert "repro.net" in table.top_level
    assert "repro.net.message" in table.top_level
    assert "repro.sim" in table.top_level
    assert table.names["Message"] == "repro.net.message.Message"


def test_constants_and_method_aliases(tree):
    tree.write("src/repro/core/agent.py", """\
        COM_REQ = "com-req"
        ANNOTATED: str = "annotated"
        NOT_A_STRING = 7

        class Agent:
            def _handle_com_nack(self, msg):
                return msg

            _handle_ch_nack = _handle_com_nack
        """)
    graph = build_graph(tree)
    mod = graph.module("repro.core.agent")
    assert mod.constants == {"COM_REQ": "com-req", "ANNOTATED": "annotated"}
    cls = mod.classes["Agent"]
    # The alias points at the *same* FunctionInfo, so closures
    # (send/event extraction) follow it without special cases.
    assert cls.methods["_handle_ch_nack"] is cls.methods["_handle_com_nack"]


def test_method_lookup_walks_mixin_bases(tree):
    tree.write("src/repro/core/base.py", """\
        class ConfigMixin:
            def _commit(self):
                pass
        """)
    tree.write("src/repro/core/agent.py", """\
        from repro.core.base import ConfigMixin

        class Agent(ConfigMixin):
            def run(self):
                self._commit()
        """)
    graph = build_graph(tree)
    mod = graph.module("repro.core.agent")
    cls = mod.classes["Agent"]
    located = graph.method_lookup(mod, cls, "_commit")
    assert located is not None
    found_mod, info = located
    assert found_mod.name == "repro.core.base"
    assert info.qualname == "ConfigMixin._commit"


def test_import_edges_are_repro_only_with_linenos(tree):
    tree.write("src/repro/core/agent.py", """\
        import json
        import repro.sim
        from repro.net.message import Message
        """)
    graph = build_graph(tree)
    edges = {(src, dst): line for src, dst, line in graph.import_edges()}
    assert ("repro.core.agent", "repro.sim") in edges
    assert edges[("repro.core.agent", "repro.net.message")] == 3
    assert all(dst.startswith("repro") for (_, dst) in edges)


def test_strongly_connected_components():
    edges = {
        "a": {"b"},
        "b": {"c"},
        "c": {"a"},
        "d": {"a"},
        "e": set(),
    }
    components = strongly_connected_components(edges)
    cyclic = [sorted(c) for c in components if len(c) > 1]
    assert cyclic == [["a", "b", "c"]]


def test_dispatch_bounces_through_composed_subclass(tree):
    # ``self._notify()`` inside a mix-in has no ``_notify`` on the
    # mix-in itself; at runtime it dispatches on the composed agent.
    tree.write("src/repro/core/mixin.py", """\
        import repro.core.messages as m

        class VoteMixin:
            def _handle_quorum_clt(self, msg):
                self._notify(msg)
        """)
    tree.write("src/repro/core/agent.py", """\
        import repro.core.messages as m
        from repro.core.mixin import VoteMixin

        class Agent(VoteMixin):
            def _notify(self, msg):
                self._send(msg.src, m.QUORUM_CFM)
        """)
    graph = build_graph(tree)
    mixin_mod = graph.module("repro.core.mixin")
    mixin_cls = mixin_mod.classes["VoteMixin"]
    dispatch = _Dispatch(graph)
    located = dispatch.resolve(mixin_mod, mixin_cls, "_notify")
    assert located is not None
    assert located[1].qualname == "Agent._notify"
    sends = send_closure(graph, mixin_mod, mixin_cls, "_handle_quorum_clt",
                         dispatch=dispatch)
    assert set(sends) == {"QUORUM_CFM"}


def test_send_closure_is_transitive_and_cycle_safe(tree):
    tree.write("src/repro/core/agent.py", """\
        import repro.core.messages as m
        from repro.net.message import Message

        class Agent:
            def _handle_com_req(self, msg):
                self._start_vote(msg)
                self._start_vote(msg)  # revisit must not loop

            def _start_vote(self, msg):
                self._send(msg.src, m.QUORUM_CLT)
                self._maybe_flood()

            def _maybe_flood(self):
                self._start_vote(None)  # cycle back
                flood = Message(mtype=m.QUORUM_UPD, src=0)
                return flood

            def _compare_only(self, msg):
                return msg.mtype == m.COM_NACK
        """)
    graph = build_graph(tree)
    mod = graph.module("repro.core.agent")
    cls = mod.classes["Agent"]
    sends = send_closure(graph, mod, cls, "_handle_com_req")
    # QUORUM_CLT via the helper, QUORUM_UPD via Message(mtype=...);
    # the comparison in _compare_only is not a send and is unreachable.
    assert set(sends) == {"QUORUM_CLT", "QUORUM_UPD"}
