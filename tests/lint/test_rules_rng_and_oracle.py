"""rng-stream and no-oracle-import rules."""


# --- rng-stream ------------------------------------------------------


def test_random_random_flagged_outside_sim_rng(tree):
    tree.write("src/repro/core/bad.py", """\
        import random

        def make(seed: int):
            return random.Random(seed)
        """)
    findings = tree.findings(select={"rng-stream"})
    assert len(findings) == 1
    assert findings[0].rule == "rng-stream"


def test_from_import_random_and_systemrandom_flagged(tree):
    tree.write("src/repro/mobility/bad.py", """\
        from random import Random, SystemRandom

        a = Random(1)
        b = SystemRandom()
        """)
    assert len(tree.findings(select={"rng-stream"})) == 2


def test_sim_rng_module_is_the_blessed_home(tree):
    tree.write("src/repro/sim/rng.py", """\
        import random

        def generator_from_seed(seed: int) -> random.Random:
            return random.Random(seed)
        """)
    assert tree.findings(select={"rng-stream"}) == []


def test_stream_consumers_not_flagged(tree):
    tree.write("src/repro/core/good.py", """\
        def draw(streams):
            return streams.get("mobility").random()
        """)
    assert tree.findings(select={"rng-stream"}) == []


def test_rng_stream_suppression(tree):
    tree.write("src/repro/core/bad.py", """\
        import random

        r = random.Random(0)  # repro-lint: disable=rng-stream
        """)
    assert tree.findings(select={"rng-stream"}) == []


# --- no-oracle-import ------------------------------------------------


def test_numpy_networkx_and_oracle_imports_flagged(tree):
    tree.write("src/repro/core/bad.py", """\
        import numpy
        import networkx as nx
        from repro.net.oracle import OracleTopology
        from repro.net import oracle
        """)
    findings = tree.findings(select={"no-oracle-import"})
    assert len(findings) == 4
    assert all(f.rule == "no-oracle-import" for f in findings)


def test_oracle_and_bench_modules_exempt(tree):
    tree.write("src/repro/net/oracle.py", """\
        import networkx as nx
        import numpy as np
        """)
    tree.write("src/repro/perf/bench.py", """\
        def run():
            from repro.net.oracle import OracleTopology
            return OracleTopology
        """)
    assert tree.findings(select={"no-oracle-import"}) == []


def test_runtime_imports_not_flagged(tree):
    tree.write("src/repro/core/good.py", """\
        from repro.net.topology import Topology
        from repro.net import topology
        import json
        """)
    assert tree.findings(select={"no-oracle-import"}) == []


def test_oracle_import_file_suppression(tree):
    tree.write("src/repro/core/bad.py", """\
        # repro-lint: disable=no-oracle-import
        import numpy
        """)
    assert tree.findings(select={"no-oracle-import"}) == []
