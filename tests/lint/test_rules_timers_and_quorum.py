"""timer-discipline and quorum-arith rules."""

from repro.lint import Severity


# --- timer-discipline ------------------------------------------------


def test_literal_timer_assignments_flagged(tree):
    tree.write("src/repro/core/bad.py", """\
        td = 4.0
        T_d = 2

        class Node:
            def setup(self, cfg):
                cfg.td = 1.5
        """)
    findings = tree.findings(select={"timer-discipline"})
    assert len(findings) == 3
    assert all(f.severity is Severity.WARNING for f in findings)
    assert [f.line for f in findings] == [1, 2, 6]


def test_literal_timer_default_flagged(tree):
    tree.write("src/repro/core/bad.py", """\
        def start(node, tr=3.0):
            return node, tr
        """)
    findings = tree.findings(select={"timer-discipline"})
    assert len(findings) == 1
    assert "'tr'" in findings[0].message


def test_config_module_exempt(tree):
    tree.write("src/repro/core/config.py", """\
        td = 4.0
        T_r = 2.0
        """)
    assert tree.findings(select={"timer-discipline"}) == []


def test_call_keyword_not_flagged(tree):
    tree.write("src/repro/core/good.py", """\
        def build(ProtocolConfig):
            return ProtocolConfig(td=4.0, tr=2.0)
        """)
    assert tree.findings(select={"timer-discipline"}) == []


def test_non_literal_timer_assignment_clean(tree):
    tree.write("src/repro/core/good.py", """\
        def wire(self, cfg):
            self.td = cfg.td
            tr = cfg.tr * 2
            return tr
        """)
    assert tree.findings(select={"timer-discipline"}) == []


def test_unrelated_names_clean(tree):
    tree.write("src/repro/core/good.py", """\
        total = 4.0
        trace = 1
        """)
    assert tree.findings(select={"timer-discipline"}) == []


def test_timer_line_suppression(tree):
    tree.write("src/repro/core/bad.py", """\
        td = 4.0  # repro-lint: disable=timer-discipline
        """)
    assert tree.findings(select={"timer-discipline"}) == []


# --- quorum-arith ----------------------------------------------------


def test_floor_div_two_flagged_in_quorum(tree):
    tree.write("src/repro/quorum/bad.py", """\
        def threshold(n):
            return n // 2 + 1
        """)
    findings = tree.findings(select={"quorum-arith"})
    assert len(findings) == 1
    assert findings[0].severity is Severity.WARNING
    assert "majority_threshold" in findings[0].message


def test_cluster_package_in_scope(tree):
    tree.write("src/repro/cluster/bad.py", """\
        def half(sizes):
            return [s // 2 for s in sizes]
        """)
    assert len(tree.findings(select={"quorum-arith"})) == 1


def test_voting_module_is_the_blessed_home(tree):
    tree.write("src/repro/quorum/voting.py", """\
        def majority_threshold(total):
            return total // 2 + 1
        """)
    assert tree.findings(select={"quorum-arith"}) == []


def test_other_packages_out_of_scope(tree):
    tree.write("src/repro/core/ok.py", """\
        def mid(xs):
            return xs[len(xs) // 2]
        """)
    assert tree.findings(select={"quorum-arith"}) == []


def test_other_divisors_clean(tree):
    tree.write("src/repro/quorum/ok.py", """\
        def thirds(n):
            return n // 3
        """)
    assert tree.findings(select={"quorum-arith"}) == []


def test_quorum_arith_line_suppression(tree):
    tree.write("src/repro/quorum/bad.py", """\
        def half(n):
            return n // 2  # repro-lint: disable=quorum-arith
        """)
    assert tree.findings(select={"quorum-arith"}) == []
