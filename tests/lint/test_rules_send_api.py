"""send-api rule: the removed Transport surface stays dead in-repo.

This is the AST-based replacement for the old regex grep
(tests/net/test_no_deprecated_callers.py pre-PR-4 and the CI
deprecation-grep job).  Since the shims were deleted the rule has no
exempt module: any ``unicast``/``broadcast_1hop``/``flood`` call is a
hard error anywhere, including ``repro.net.transport`` itself.
"""


def test_each_removed_method_flagged(tree):
    tree.write("src/repro/core/bad.py", """\
        def go(transport, src, dst, msg, cat):
            transport.unicast(src, dst, msg, cat)
            transport.broadcast_1hop(src, msg, cat)
            transport.flood(src, msg, cat)
        """)
    findings = tree.findings(select={"send-api"})
    assert len(findings) == 3
    assert [f.line for f in findings] == [2, 3, 4]


def test_examples_and_benchmarks_in_scope(tree):
    tree.write("examples/demo.py", """\
        def go(transport, src, msg, cat):
            transport.flood(src, msg, cat)
        """)
    tree.write("benchmarks/bench_x.py", """\
        def go(transport, src, dst, msg, cat):
            return transport.unicast(src, dst, msg, cat)
        """)
    assert len(tree.findings(select={"send-api"})) == 2


def test_transport_module_no_longer_exempt(tree):
    # Pre-removal the shim module hosted the legacy methods and was
    # exempt; with the shims gone even repro.net.transport is flagged.
    tree.write("src/repro/net/transport.py", """\
        class Transport:
            def retry(self, src, dst, msg, category):
                return self.unicast(src, dst, msg, category)
        """)
    findings = tree.findings(select={"send-api"})
    assert len(findings) == 1
    assert findings[0].line == 3


def test_send_endpoint_not_flagged(tree):
    tree.write("src/repro/core/good.py", """\
        def go(transport, src, dst, msg, cat, scope):
            return transport.send(src, dst, msg, category=cat, scope=scope)
        """)
    assert tree.findings(select={"send-api"}) == []


def test_mentions_in_strings_and_docstrings_not_flagged(tree):
    tree.write("src/repro/core/good.py", '''\
        def go():
            """Calls transport.flood(...) used to live here."""
            return "unicast(x)"
        ''')
    assert tree.findings(select={"send-api"}) == []


def test_send_api_line_suppression(tree):
    tree.write("src/repro/core/compat.py", """\
        def legacy(transport, src, msg, cat):
            return transport.flood(src, msg, cat)  # repro-lint: disable=send-api
        """)
    assert tree.findings(select={"send-api"}) == []
