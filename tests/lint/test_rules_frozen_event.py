"""frozen-event rule: immutable obs events, no entropy in repro.obs."""


def test_unfrozen_unslotted_event_two_findings(tree):
    tree.write("src/repro/obs/events.py", """\
        import dataclasses

        @dataclasses.dataclass
        class VoteDecided:
            time: float
        """)
    findings = tree.findings(select={"frozen-event"})
    assert len(findings) == 2
    assert all(f.rule == "frozen-event" for f in findings)


def test_frozen_with_add_slots_decorator_clean(tree):
    tree.write("src/repro/obs/events.py", """\
        import dataclasses

        def slotted(cls):
            return cls

        @slotted
        @dataclasses.dataclass(frozen=True)
        class VoteDecided:
            time: float
        """)
    assert tree.findings(select={"frozen-event"}) == []


def test_uuid_import_in_obs_flagged(tree):
    tree.write("src/repro/obs/bus.py", """\
        import uuid

        def new_correlation():
            return uuid.uuid4()
        """)
    findings = tree.findings(select={"frozen-event"})
    assert len(findings) == 1
    assert "uuid" in findings[0].message


def test_datetime_and_secrets_imports_flagged(tree):
    tree.write("src/repro/obs/record.py", """\
        from datetime import datetime
        import secrets
        """)
    findings = tree.findings(select={"frozen-event"})
    assert len(findings) == 2


def test_uuid_outside_obs_out_of_scope(tree):
    tree.write("src/repro/experiments/tags.py", """\
        import uuid
        """)
    assert tree.findings(select={"frozen-event"}) == []


def test_dataclasses_outside_events_module_not_frozen_checked(tree):
    tree.write("src/repro/obs/spans.py", """\
        import dataclasses

        @dataclasses.dataclass
        class Span:
            corr: int
        """)
    assert tree.findings(select={"frozen-event"}) == []


def test_frozen_event_line_suppression(tree):
    tree.write("src/repro/obs/bus.py", """\
        import uuid  # repro-lint: disable=frozen-event
        """)
    assert tree.findings(select={"frozen-event"}) == []
