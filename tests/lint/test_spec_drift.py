"""docs/PROTOCOL.md and protocol_spec.py must carry the same machine.

The state-machine conformance spec lives twice: as Python data
(``repro.lint.protocol_spec.HANDLER_MAY_SEND``, what the lint rule
enforces) and as the generated markdown table in docs/PROTOCOL.md
(what humans read next to the paper walkthrough).  A one-sided edit —
changing the spec without regenerating the table, or hand-editing the
table — is drift, and this test fails on it.
"""

import re
from pathlib import Path
from typing import Dict, FrozenSet

from repro.lint import protocol_spec as spec

REPO_ROOT = Path(__file__).resolve().parents[2]
PROTOCOL_MD = REPO_ROOT / "docs" / "PROTOCOL.md"

BEGIN = "<!-- state-machine-table:begin"
END = "<!-- state-machine-table:end -->"
ROW = re.compile(r"^\|\s*`([A-Z_]+)`\s*\|\s*(.*?)\s*\|$")


def _table_from_docs() -> Dict[str, FrozenSet[str]]:
    text = PROTOCOL_MD.read_text(encoding="utf-8")
    assert BEGIN in text and END in text, (
        "docs/PROTOCOL.md lost its state-machine table markers")
    block = text[text.index(BEGIN):text.index(END)]
    table: Dict[str, FrozenSet[str]] = {}
    for line in block.splitlines():
        match = ROW.match(line.strip())
        if match is None:
            continue
        mtype, cell = match.groups()
        if cell == "—":
            table[mtype] = frozenset()
        else:
            table[mtype] = frozenset(
                name.strip("` ") for name in cell.split(","))
    return table


def test_docs_table_matches_spec():
    docs = _table_from_docs()
    assert set(docs) == set(spec.HANDLER_MAY_SEND), (
        "message rows differ between docs/PROTOCOL.md and protocol_spec: "
        f"docs-only={sorted(set(docs) - set(spec.HANDLER_MAY_SEND))}, "
        f"spec-only={sorted(set(spec.HANDLER_MAY_SEND) - set(docs))}")
    for mtype, may_send in spec.HANDLER_MAY_SEND.items():
        assert docs[mtype] == may_send, (
            f"{mtype}: docs says {sorted(docs[mtype])}, "
            f"spec says {sorted(may_send)}")


def test_spec_messages_exist_in_messages_module():
    from repro.core import messages as m
    declared = {name for name in dir(m)
                if name.isupper() and isinstance(getattr(m, name), str)}
    unknown = set(spec.HANDLER_MAY_SEND) - declared
    sendable = {s for may in spec.HANDLER_MAY_SEND.values() for s in may}
    assert unknown == set(), f"spec rows for unknown messages: {unknown}"
    assert sendable - declared == set(), (
        f"spec allows sending unknown messages: {sendable - declared}")


def test_terminal_events_are_a_subset_of_emitters():
    assert spec.TERMINAL_EVENTS <= set(spec.EVENT_EMITTERS)
    for path, terminals in spec.TERMINAL_PATHS.items():
        assert terminals <= spec.TERMINAL_EVENTS, (
            f"{path} assigned non-terminal events "
            f"{sorted(terminals - spec.TERMINAL_EVENTS)}")


def test_spec_events_match_obs_module():
    from repro.obs import events as ev
    declared = {cls.__name__ for cls in ev.EVENT_TYPES.values()}
    assert set(spec.EVENT_EMITTERS) == declared, (
        "EVENT_EMITTERS out of sync with repro.obs.events: "
        f"spec-only={sorted(set(spec.EVENT_EMITTERS) - declared)}, "
        f"obs-only={sorted(declared - set(spec.EVENT_EMITTERS))}")
