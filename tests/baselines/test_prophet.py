"""Prophet baseline: sequence-function allocation."""

from repro.baselines.prophet import ProphetAgent, ProphetConfig, _splitmix
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net import Node
from repro.net.context import NetworkContext
from repro.net.stats import Category


def build(positions, cfg=None, enter_gap=3.0, seed=1):
    ctx = NetworkContext.build(seed=seed, transmission_range=150.0)
    cfg = cfg or ProphetConfig()
    agents = []
    for i, (x, y) in enumerate(positions):
        node = Node(i, Stationary(Point(x, y)))
        ctx.topology.add_node(node)
        agent = ProphetAgent(ctx, node, cfg)
        ctx.sim.schedule(enter_gap * i + 0.1, agent.on_enter)
        agents.append(agent)
    return ctx, agents


def chain(n):
    return [(100 + 120 * i, 500) for i in range(n)]


def test_splitmix_deterministic_and_diffusing():
    assert _splitmix(1) == _splitmix(1)
    assert _splitmix(1) != _splitmix(2)
    # The sequence doesn't cycle trivially.
    state, seen = 1, set()
    for _ in range(1000):
        state = _splitmix(state)
        seen.add(state)
    assert len(seen) == 1000


def test_first_node_self_seeds():
    ctx, agents = build(chain(1))
    ctx.sim.run(until=10.0)
    assert agents[0].ip is not None
    assert agents[0].state is not None
    assert agents[0].config_latency_hops == 0


def test_allocation_is_one_exchange():
    ctx, agents = build(chain(2), ProphetConfig())
    ctx.sim.run(until=15.0)
    # PR_REQ (1 hop) + PR_ASSIGN (1 hop): total config cost 2 hops.
    assert ctx.stats.hops[Category.CONFIG] == 2
    assert agents[1].config_latency_hops == 2


def test_each_node_gets_independent_sequence_state():
    ctx, agents = build(chain(3))
    ctx.sim.run(until=30.0)
    states = [a.state for a in agents]
    assert all(s is not None for s in states)
    assert len(set(states)) == 3


def test_large_space_rarely_collides():
    cfg = ProphetConfig(address_space_bits=24)
    ctx, agents = build(chain(8), cfg)
    ctx.sim.run(until=60.0)
    ips = [a.ip for a in agents if a.ip is not None]
    assert len(ips) == 8
    assert len(set(ips)) == 8  # 8 draws from 16M values: no collision


def test_small_space_can_collide_and_framework_detects_it():
    """Prophet's trade-off: with a tiny space, collisions happen and
    nothing in the protocol detects them — RunResult does."""
    from repro.experiments import Scenario, run_scenario
    from repro.baselines.prophet import ProphetConfig as PC
    collisions = 0
    for seed in range(4):
        result = run_scenario(
            Scenario.paper_default(num_nodes=40, seed=seed,
                                   settle_time=10.0),
            protocol="prophet", protocol_config=PC(address_space_bits=5))
        collisions += result.duplicate_addresses
    assert collisions > 0  # 40 nodes into 32 addresses must collide


def test_departure_is_silent():
    ctx, agents = build(chain(2))
    ctx.sim.run(until=15.0)
    agents[1].depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 5.0)
    assert ctx.stats.hops[Category.DEPARTURE] == 0


def test_runner_integration():
    from repro.experiments import Scenario, run_scenario
    result = run_scenario(
        Scenario.paper_default(num_nodes=30, seed=1, settle_time=10.0),
        protocol="prophet")
    assert result.configuration_success_rate() >= 0.9
    assert result.avg_config_latency_hops() <= 4
