"""C-tree baseline [3]: coordinator pools, C-root reporting."""

from repro.baselines.ctree import CTreeAgent, CTreeConfig
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net import Node
from repro.net.context import NetworkContext
from repro.net.stats import Category


def build(positions, cfg=None, enter_gap=3.0):
    ctx = NetworkContext.build(seed=1, transmission_range=150.0)
    cfg = cfg or CTreeConfig()
    agents = []
    for i, (x, y) in enumerate(positions):
        node = Node(i, Stationary(Point(x, y)))
        ctx.topology.add_node(node)
        agent = CTreeAgent(ctx, node, cfg)
        ctx.sim.schedule(enter_gap * i + 0.1, agent.on_enter)
        agents.append(agent)
    return ctx, agents


def chain(n):
    return [(100 + 120 * i, 500) for i in range(n)]


def test_first_node_is_root_coordinator():
    ctx, agents = build(chain(1))
    ctx.sim.run(until=10.0)
    assert agents[0].is_root and agents[0].is_coordinator
    assert agents[0].ip == 0


def test_nearby_node_becomes_normal_node():
    ctx, agents = build(chain(2))
    ctx.sim.run(until=15.0)
    assert not agents[1].is_coordinator
    assert agents[1].ip is not None
    assert agents[1].root_id == agents[0].node_id


def test_distant_node_becomes_coordinator_with_block():
    ctx, agents = build(chain(4))  # node 3 beyond 2 hops
    ctx.sim.run(until=30.0)
    assert agents[3].is_coordinator and not agents[3].is_root
    assert agents[3].pool is not None
    assert agents[3].pool.total_count() > 1


def test_coordinators_report_to_root():
    cfg = CTreeConfig(report_interval=2.0)
    ctx, agents = build(chain(4), cfg)
    ctx.sim.run(until=40.0)
    assert agents[3].ever_reported
    assert agents[3].node_id in agents[0].coordinator_last_report
    assert ctx.stats.hops[Category.MAINTENANCE] > 0


def test_addresses_unique():
    ctx, agents = build(chain(6))
    ctx.sim.run(until=60.0)
    ips = [a.ip for a in agents if a.ip is not None]
    assert len(ips) == 6
    assert len(set(ips)) == 6


def test_configuration_is_cheap():
    ctx, agents = build(chain(3), CTreeConfig(report_interval=1000.0))
    ctx.sim.run(until=30.0)
    assert all(a.config_latency_hops <= 4 for a in agents
               if a.config_latency_hops is not None)


def test_root_reclaims_silent_coordinator():
    cfg = CTreeConfig(report_interval=2.0, stale_reports=2)
    ctx, agents = build(chain(4), cfg)
    ctx.sim.run(until=30.0)
    coordinator = agents[3]
    space = coordinator.pool.total_count()
    root_before = agents[0].pool.total_count()
    coordinator.vanish()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    assert ctx.stats.hops[Category.RECLAMATION] > 0
    assert agents[0].pool.total_count() == root_before + space


def test_return_goes_to_nearest_coordinator_not_allocator():
    """The fragmentation property the paper notes for [3]."""
    ctx, agents = build(chain(5))
    ctx.sim.run(until=50.0)
    # Node 4 was configured by coordinator 3; move it next to the root.
    leaver = agents[4]
    allocator = ctx.agent_of(leaver.parent_id)
    leaver.node.mobility = Stationary(Point(100, 560))
    ctx.topology.invalidate()
    address = leaver.ip
    allocator_before = allocator.pool.free_count() if allocator.pool else 0
    leaver.depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 10.0)
    # The root (nearest coordinator now), not the allocator, got it.
    assert agents[0].pool.is_free(address)
    if allocator.pool is not None:
        assert allocator.pool.free_count() == allocator_before


def test_new_root_elected_when_root_dies():
    cfg = CTreeConfig(report_interval=2.0)
    ctx, agents = build(chain(7), cfg)
    ctx.sim.run(until=60.0)
    coordinators = [a for a in agents if a.is_coordinator and not a.is_root]
    assert coordinators
    agents[0].vanish()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    roots = [a for a in agents if a.is_root and a.node.alive]
    assert len(roots) >= 1
