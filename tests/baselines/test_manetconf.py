"""MANETconf baseline: full replication, universal assent."""

from repro.baselines.manetconf import ManetconfAgent, ManetconfConfig
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net import Node
from repro.net.context import NetworkContext
from repro.net.stats import Category


def build(positions, cfg=None, enter_gap=5.0):
    ctx = NetworkContext.build(seed=1, transmission_range=150.0)
    cfg = cfg or ManetconfConfig()
    agents = []
    for i, (x, y) in enumerate(positions):
        node = Node(i, Stationary(Point(x, y)))
        ctx.topology.add_node(node)
        agent = ManetconfAgent(ctx, node, cfg)
        ctx.sim.schedule(enter_gap * i + 0.1, agent.on_enter)
        agents.append(agent)
    return ctx, agents


def chain(n):
    return [(100 + 120 * i, 500) for i in range(n)]


def test_first_node_takes_address_zero():
    ctx, agents = build(chain(1))
    ctx.sim.run(until=20.0)
    assert agents[0].ip == 0
    assert agents[0].in_use == {0}


def test_all_nodes_get_unique_addresses():
    ctx, agents = build(chain(5))
    ctx.sim.run(until=80.0)
    ips = [a.ip for a in agents]
    assert all(ip is not None for ip in ips)
    assert len(set(ips)) == 5


def test_tables_converge_via_commit_floods():
    ctx, agents = build(chain(4))
    ctx.sim.run(until=70.0)
    expected = {a.ip for a in agents}
    for agent in agents:
        assert agent.in_use == expected


def test_configuration_floods_whole_network():
    ctx, agents = build(chain(4))
    ctx.sim.run(until=70.0)
    # Every configuration floods twice (request + commit) plus unicast
    # assents: far more than the chain's 3 + 2 + 2 hop minimum.
    assert ctx.stats.hops[Category.CONFIG] > 20
    assert ctx.stats.messages[Category.CONFIG] > 12


def test_latency_includes_flood_round_trip():
    ctx, agents = build(chain(4))
    ctx.sim.run(until=70.0)
    last = agents[3]
    # Request 1 hop + flood eccentricity + farthest assent + assign.
    assert last.config_latency_hops >= 4


def test_graceful_departure_releases_address_everywhere():
    ctx, agents = build(chain(3))
    ctx.sim.run(until=50.0)
    departed_ip = agents[1].ip
    agents[1].depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 10.0)
    assert not agents[1].node.alive
    for agent in (agents[0], agents[2]):
        assert departed_ip not in agent.in_use
    assert ctx.stats.hops[Category.DEPARTURE] > 0


def test_silent_node_cleaned_up_on_next_configuration():
    ctx, agents = build(chain(3))
    ctx.sim.run(until=50.0)
    dead_ip = agents[2].ip
    agents[2].vanish()
    # A new node triggers a configuration; the dead node fails to
    # assent and is cleaned up.
    node = Node(99, Stationary(Point(220, 560)))
    ctx.topology.add_node(node)
    newcomer = ManetconfAgent(ctx, node, agents[0].cfg)
    newcomer.on_enter()
    ctx.sim.run(until=ctx.sim.now + 30.0)
    assert newcomer.ip is not None
    assert dead_ip not in agents[0].in_use
    assert ctx.stats.hops[Category.RECLAMATION] > 0


def test_network_id_shared():
    ctx, agents = build(chain(4))
    ctx.sim.run(until=70.0)
    assert len({a.network_id for a in agents}) == 1
