"""Stateless DAD baseline: random pick + query floods."""

from repro.baselines.dad import DadAgent, DadConfig
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net import Node
from repro.net.context import NetworkContext
from repro.net.stats import Category


def build(positions, cfg=None, enter_gap=5.0):
    ctx = NetworkContext.build(seed=1, transmission_range=150.0)
    cfg = cfg or DadConfig()
    agents = []
    for i, (x, y) in enumerate(positions):
        node = Node(i, Stationary(Point(x, y)))
        ctx.topology.add_node(node)
        agent = DadAgent(ctx, node, cfg)
        ctx.sim.schedule(enter_gap * i + 0.1, agent.on_enter)
        agents.append(agent)
    return ctx, agents


def chain(n):
    return [(100 + 120 * i, 500) for i in range(n)]


def test_lone_node_configures_after_retries():
    cfg = DadConfig(areq_retries=3, reply_wait=1.0)
    ctx, agents = build(chain(1), cfg)
    ctx.sim.run(until=20.0)
    assert agents[0].ip is not None
    # Configured only after all silent rounds elapsed.
    assert agents[0].configured_at >= 3 * 1.0


def test_connected_nodes_get_unique_addresses():
    ctx, agents = build(chain(5))
    ctx.sim.run(until=80.0)
    ips = [a.ip for a in agents]
    assert all(ip is not None for ip in ips)
    assert len(set(ips)) == 5


def test_conflicting_candidate_repicked():
    cfg = DadConfig(address_space_bits=1)  # only 2 addresses: conflicts
    ctx, agents = build(chain(2), cfg)
    ctx.sim.run(until=60.0)
    a, b = agents
    assert a.ip is not None and b.ip is not None
    assert a.ip != b.ip


def test_every_configuration_floods():
    ctx, agents = build(chain(4))
    ctx.sim.run(until=60.0)
    # areq_retries floods per node.
    assert ctx.stats.messages[Category.CONFIG] >= 4 * 3


def test_departure_is_silent():
    ctx, agents = build(chain(2))
    ctx.sim.run(until=30.0)
    before = ctx.stats.hops[Category.DEPARTURE]
    agents[1].depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 5.0)
    assert ctx.stats.hops[Category.DEPARTURE] == before
    assert not agents[1].node.alive
