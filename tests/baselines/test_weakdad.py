"""Weak DAD baseline: instant self-configuration, routing-carried
conflict detection."""

from repro.baselines.weakdad import WeakDadAgent, WeakDadConfig
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net import Node
from repro.net.context import NetworkContext
from repro.net.stats import Category


def build(positions, cfg=None, enter_gap=2.0, seed=1):
    ctx = NetworkContext.build(seed=seed, transmission_range=150.0)
    cfg = cfg or WeakDadConfig()
    agents = []
    for i, (x, y) in enumerate(positions):
        node = Node(i, Stationary(Point(x, y)))
        ctx.topology.add_node(node)
        agent = WeakDadAgent(ctx, node, cfg)
        ctx.sim.schedule(enter_gap * i + 0.1, agent.on_enter)
        agents.append(agent)
    return ctx, agents


def chain(n):
    return [(100 + 120 * i, 500) for i in range(n)]


def test_configuration_is_instant_and_free():
    ctx, agents = build(chain(3), WeakDadConfig(lsa_interval=1000.0))
    ctx.sim.run(until=10.0)
    for agent in agents:
        assert agent.ip is not None
        assert agent.config_latency_hops == 0
        assert agent.configured_at == agent.entered_at
    assert ctx.stats.hops[Category.CONFIG] == 0


def test_keys_are_unique_hardware_ids():
    ctx, agents = build(chain(3))
    assert len({a.key for a in agents}) == 3


def test_lsa_traffic_charged_as_substrate():
    ctx, agents = build(chain(3), WeakDadConfig(lsa_interval=2.0))
    ctx.sim.run(until=20.0)
    assert ctx.stats.hops[Category.HELLO] > 0


def test_conflict_detected_and_higher_key_yields():
    # Address space of 1: every node picks address 0 — guaranteed clash.
    cfg = WeakDadConfig(address_space_bits=1, lsa_interval=1.0)
    ctx, agents = build(chain(2), cfg)
    ctx.sim.run(until=5.0)  # both entered and configured
    # Force both onto the same address to make the clash deterministic.
    a, b = agents
    if a.ip != b.ip:
        ctx.unbind_ip(b.ip)
        b.ip = a.ip
        ctx.bind_ip(b.ip, b.node_id)
    clashing = b.ip
    ctx.sim.run(until=30.0)
    assert a.ip != b.ip or a.ip != clashing
    # The higher-keyed node (b) is the one that moved.
    assert b.reconfigurations >= 1 or a.ip != clashing
    assert a.conflicts_detected + b.conflicts_detected >= 1


def test_runner_integration():
    from repro.experiments import Scenario, run_scenario
    result = run_scenario(
        Scenario.paper_default(num_nodes=25, seed=1, settle_time=10.0),
        protocol="weakdad")
    assert result.configuration_success_rate() == 1.0
    assert result.avg_config_latency_hops() == 0.0


def test_departure_is_silent():
    ctx, agents = build(chain(2))
    ctx.sim.run(until=10.0)
    before = ctx.stats.hops[Category.DEPARTURE]
    agents[1].depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 5.0)
    assert ctx.stats.hops[Category.DEPARTURE] == before
