"""Buddy baseline [2]: disjoint blocks, periodic global sync."""

from repro.baselines.buddy import BuddyAgent, BuddyConfig
from repro.geometry import Point
from repro.mobility.base import Stationary
from repro.net import Node
from repro.net.context import NetworkContext
from repro.net.stats import Category


def build(positions, cfg=None, enter_gap=3.0):
    ctx = NetworkContext.build(seed=1, transmission_range=150.0)
    cfg = cfg or BuddyConfig()
    agents = []
    for i, (x, y) in enumerate(positions):
        node = Node(i, Stationary(Point(x, y)))
        ctx.topology.add_node(node)
        agent = BuddyAgent(ctx, node, cfg)
        ctx.sim.schedule(enter_gap * i + 0.1, agent.on_enter)
        agents.append(agent)
    return ctx, agents


def chain(n):
    return [(100 + 120 * i, 500) for i in range(n)]


def test_first_node_owns_whole_space():
    ctx, agents = build(chain(1), BuddyConfig(address_space_bits=6))
    ctx.sim.run(until=10.0)
    assert agents[0].ip == 0
    assert agents[0].pool.total_count() == 64


def test_blocks_are_disjoint():
    ctx, agents = build(chain(5))
    ctx.sim.run(until=60.0)
    seen = set()
    for agent in agents:
        assert agent.pool is not None
        addresses = set()
        for block in agent.pool.snapshot_blocks():
            addresses.update(block.addresses())
        assert not (addresses & seen)
        seen |= addresses


def test_configuration_is_cheap_and_local():
    ctx, agents = build(chain(3), BuddyConfig(sync_interval=1000.0))
    ctx.sim.run(until=30.0)
    # One request + one assignment per node, a couple hops each.
    assert ctx.stats.hops[Category.CONFIG] <= 10
    assert all(a.config_latency_hops <= 4 for a in agents)


def test_periodic_sync_floods_dominate_overhead():
    ctx, agents = build(chain(4), BuddyConfig(sync_interval=2.0))
    ctx.sim.run(until=60.0)
    assert ctx.stats.hops[Category.MAINTENANCE] > (
        10 * ctx.stats.hops[Category.CONFIG])


def test_sync_builds_global_table():
    ctx, agents = build(chain(3), BuddyConfig(sync_interval=2.0))
    ctx.sim.run(until=30.0)
    for agent in agents:
        assert set(agent.table) == {0, 1, 2}


def test_graceful_departure_returns_block_to_donor():
    ctx, agents = build(chain(2))
    ctx.sim.run(until=20.0)
    donor, leaver = agents
    assert leaver.donor_id == donor.node_id
    total = donor.pool.total_count() + leaver.pool.total_count()
    leaver.depart_gracefully()
    ctx.sim.run(until=ctx.sim.now + 10.0)
    assert donor.pool.total_count() == total


def test_silent_buddy_reclaimed():
    cfg = BuddyConfig(sync_interval=2.0, stale_syncs=2)
    ctx, agents = build(chain(2), cfg)
    ctx.sim.run(until=20.0)
    donor, leaver = agents
    space = leaver.pool.total_count()
    before = donor.pool.total_count()
    leaver.vanish()
    ctx.sim.run(until=ctx.sim.now + 20.0)
    assert donor.pool.total_count() == before + space
    assert ctx.stats.hops[Category.RECLAMATION] > 0


def test_redirect_to_largest_block_peer():
    cfg = BuddyConfig(address_space_bits=2, sync_interval=2.0)  # 4 addrs
    ctx, agents = build(chain(3), cfg)
    ctx.sim.run(until=40.0)
    configured = [a for a in agents if a.ip is not None]
    ips = [a.ip for a in configured]
    assert len(set(ips)) == len(ips)
