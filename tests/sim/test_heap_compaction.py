"""Lazy-cancel heap compaction: tombstones are purged, semantics intact."""

import heapq

from repro.sim.engine import Simulator


def test_compaction_purges_cancelled_tombstones():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
    assert len(sim._heap) == 200
    # Cancel from the back so none are removed by peek()'s top-popping.
    for handle in handles[60:]:
        sim.cancel(handle)
    assert sim.pending_events == 60
    # Compaction fires whenever tombstones exceed half the heap, so the
    # heap stays within 2x the live count instead of keeping all 140
    # cancelled entries around.
    assert len(sim._heap) < 200
    assert len(sim._heap) <= 2 * sim.pending_events
    live = sum(1 for event in sim._heap if not event.cancelled)
    assert live == 60


def test_no_compaction_below_size_floor():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(20)]
    for handle in handles[5:]:
        sim.cancel(handle)
    # Tiny heaps are left alone — compaction overhead isn't worth it.
    assert len(sim._heap) == 20
    assert sim.pending_events == 5


def test_pending_peek_and_order_unchanged_by_compaction():
    """The compacted simulator fires exactly what an uncompacted one would."""

    def build(compact):
        sim = Simulator()
        if not compact:
            sim.COMPACT_MIN_SIZE = 1 << 30  # disable
        fired = []
        handles = []
        for i in range(300):
            handles.append(
                sim.schedule(float(i % 17) + 1.0, fired.append, i,
                             priority=i % 3))
        for i, handle in enumerate(handles):
            if i % 4 != 0:
                sim.cancel(handle)
        return sim, fired

    sim_a, fired_a = build(compact=True)
    sim_b, fired_b = build(compact=False)
    assert sim_a.pending_events == sim_b.pending_events
    assert sim_a.peek() == sim_b.peek()
    sim_a.run()
    sim_b.run()
    assert fired_a == fired_b
    assert sim_a.now == sim_b.now


def test_compacted_heap_is_a_valid_heap():
    sim = Simulator()
    handles = [sim.schedule(float(997 - i), lambda: None) for i in range(150)]
    for handle in handles[:100]:
        sim.cancel(handle)
    reference = sorted(sim._heap)
    verify = list(sim._heap)
    popped = [heapq.heappop(verify) for _ in range(len(verify))]
    assert popped == reference


def test_tombstone_cap_triggers_compaction_in_large_heaps():
    """Even while tombstones are a minority, the absolute cap bounds them."""
    sim = Simulator()
    sim.COMPACT_MAX_TOMBSTONES = 50
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(400)]
    # Cancel 100 of 400 (25% — far below the half-heap fractional rule).
    for handle in handles[300:]:
        sim.cancel(handle)
    assert sim.pending_events == 300
    assert sim.compactions >= 1
    assert sim.heap_size - sim.pending_events <= 50


def test_compactions_amortized_by_min_interval():
    """A cancel pattern hovering at a threshold must not pay the O(heap)
    rebuild per cancel — compactions are spaced by schedule count."""
    sim = Simulator()
    sim.COMPACT_MAX_TOMBSTONES = 10  # trip the absolute cap constantly
    for _ in range(8):
        handles = [sim.schedule(float(i + 1), lambda: None)
                   for i in range(256)]
        for handle in handles:
            sim.cancel(handle)
    # 2048 schedules: at most ceil(2048 / interval) compactions may run
    # (plus the primed first one), however often the cap was exceeded.
    bound = 1 + -(-sim._seq // Simulator.COMPACT_MIN_INTERVAL)
    assert 1 <= sim.compactions <= bound
    # The spacing rule bounds tombstone memory too: between compactions
    # at most COMPACT_MIN_INTERVAL extra tombstones can accumulate.
    assert sim.heap_size - sim.pending_events <= (
        sim.COMPACT_MAX_TOMBSTONES + Simulator.COMPACT_MIN_INTERVAL)


def test_min_interval_does_not_delay_first_compaction():
    sim = Simulator()
    sim.COMPACT_MAX_TOMBSTONES = 10
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    for handle in handles[30:]:
        sim.cancel(handle)
    # _last_compact_seq is primed negative, so the very first threshold
    # trip compacts immediately even though seq < COMPACT_MIN_INTERVAL.
    assert sim.compactions == 1


def test_public_compact_purges_now_and_counts():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(30)]
    for handle in handles[20:]:
        sim.cancel(handle)
    # Below COMPACT_MIN_SIZE nothing happened automatically...
    assert sim.heap_size == 30
    assert sim.compactions == 0
    sim.compact()
    assert sim.heap_size == sim.pending_events == 20
    assert sim.compactions == 1
    # ...and compacting an already-clean heap is a free no-op.
    sim.compact()
    assert sim.compactions == 1


def test_timer_restart_churn_keeps_heap_bounded():
    """Realistic churn: a constantly-restarted timeout must not grow the
    heap without bound (the original lazy-cancel leak)."""
    from repro.sim.timers import Timer

    sim = Simulator()
    fired = []
    timer = Timer(sim, fired.append)
    for i in range(500):
        timer.restart(10.0, i)  # cancels the previous schedule each time
        sim.schedule(0.001 * (i + 1), lambda: None)
    # 500 cancelled timer events + 500 live ticks: without compaction the
    # heap would hold ~1000 entries.
    assert len(sim._heap) <= 2 * sim.pending_events + Simulator.COMPACT_MIN_SIZE
    sim.run()
    assert fired[-1] == 499  # only the last restart's payload fires
