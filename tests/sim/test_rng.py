"""Unit tests for named random streams."""

from repro.sim.rng import RandomStreams, derive_seed, spawn_key


def test_same_name_returns_same_stream():
    streams = RandomStreams(1)
    assert streams.get("a") is streams.get("a")


def test_different_names_are_independent():
    streams = RandomStreams(1)
    a_first = streams.get("a").random()
    # Drawing from b must not perturb a's sequence.
    streams2 = RandomStreams(1)
    streams2.get("b").random()
    assert streams2.get("a").random() == a_first


def test_deterministic_across_instances():
    seq1 = [RandomStreams(9).get("x").random() for _ in range(1)]
    seq2 = [RandomStreams(9).get("x").random() for _ in range(1)]
    assert seq1 == seq2


def test_master_seed_changes_streams():
    assert (
        RandomStreams(1).get("x").random()
        != RandomStreams(2).get("x").random()
    )


def test_derive_seed_stable_and_distinct():
    assert derive_seed(5, "a") == derive_seed(5, "a")
    assert derive_seed(5, "a") != derive_seed(5, "b")
    assert derive_seed(5, "a") != derive_seed(6, "a")


def test_fork_is_deterministic_and_independent():
    parent = RandomStreams(3)
    child1 = parent.fork("run-1")
    child2 = RandomStreams(3).fork("run-1")
    assert child1.get("m").random() == child2.get("m").random()
    other = parent.fork("run-2")
    assert other.get("m").random() != child1.get("m").random()


def test_spawn_key_depends_only_on_master_and_path():
    assert spawn_key(0, "fig05", "quorum", 3) == spawn_key(
        0, "fig05", "quorum", 3)
    assert spawn_key(0, "fig05", "quorum", 3) != spawn_key(
        1, "fig05", "quorum", 3)
    assert spawn_key(0, "fig05", "quorum", 3) != spawn_key(
        0, "fig05", "quorum", 4)


def test_spawn_key_distinguishes_part_types_and_boundaries():
    assert spawn_key(0, 1) != spawn_key(0, "1")
    assert spawn_key(0, "ab", "c") != spawn_key(0, "a", "bc")


def test_spawn_registry_matches_spawn_key():
    child = RandomStreams(7).spawn("cell", 2)
    direct = RandomStreams(spawn_key(7, "cell", 2))
    assert child.get("x").random() == direct.get("x").random()
