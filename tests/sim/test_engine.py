"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_priority_orders_simultaneous_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "low", priority=5)
    sim.schedule(1.0, fired.append, "high", priority=-5)
    sim.run()
    assert fired == ["high", "low"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(4.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.5]
    assert sim.now == 4.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0  # clock advanced to the horizon
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_when_queue_drains():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_cancel_prevents_callback():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.cancel(handle)
    sim.run()
    assert fired == []
    assert sim.pending_events == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.cancel(handle)
    sim.cancel(handle)
    assert sim.pending_events == 0


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if len(fired) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_max_events_bounds_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_peek_skips_cancelled_events():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(handle)
    assert sim.peek() == 2.0


def test_peek_empty_queue_returns_none():
    assert Simulator().peek() is None


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_run_returns_event_count():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    assert sim.run() == 5


def test_pending_events_tracks_queue():
    sim = Simulator()
    assert sim.pending_events == 0
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.cancel(h1)
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0


def test_deterministic_interleaving_across_runs():
    def run_once():
        sim = Simulator(seed=7)
        order = []
        rng = sim.streams.get("jitter")
        for i in range(20):
            sim.schedule(rng.random(), order.append, i)
        sim.run()
        return order

    assert run_once() == run_once()


def test_reentrant_run_raises():
    sim = Simulator()

    def inner():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, inner)
    sim.run()
