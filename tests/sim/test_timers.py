"""Unit tests for one-shot and periodic timers."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer, Timer


def test_timer_fires_after_delay():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.5)
    sim.run()
    assert fired == [2.5]


def test_timer_passes_args():
    sim = Simulator()
    fired = []
    timer = Timer(sim, fired.append)
    timer.start(1.0, "payload")
    sim.run()
    assert fired == ["payload"]


def test_timer_stop_prevents_firing():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(True))
    timer.start(1.0)
    timer.stop()
    sim.run()
    assert fired == []
    assert not timer.armed


def test_timer_restart_pushes_back_deadline():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    sim.run(until=0.5)
    timer.restart(1.0)
    sim.run()
    assert fired == [1.5]


def test_timer_double_start_raises():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.start(1.0)
    with pytest.raises(RuntimeError):
        timer.start(1.0)


def test_timer_rearmed_inside_callback():
    sim = Simulator()
    fired = []

    def on_fire():
        fired.append(sim.now)
        if len(fired) < 3:
            timer.start(1.0)

    timer = Timer(sim, on_fire)
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_timer_armed_and_deadline():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert not timer.armed
    assert timer.deadline is None
    timer.start(3.0)
    assert timer.armed
    assert timer.deadline == 3.0


def test_periodic_timer_fires_repeatedly():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 2.0, lambda: fired.append(sim.now))
    timer.start()
    sim.run(until=7.0)
    assert fired == [2.0, 4.0, 6.0]


def test_periodic_timer_first_delay():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 2.0, lambda: fired.append(sim.now))
    timer.start(first_delay=0.5)
    sim.run(until=5.0)
    assert fired == [0.5, 2.5, 4.5]


def test_periodic_timer_stop():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
    timer.start()
    sim.run(until=2.5)
    timer.stop()
    sim.run(until=10.0)
    assert fired == [1.0, 2.0]
    assert not timer.running


def test_periodic_timer_stop_inside_callback():
    sim = Simulator()
    fired = []

    def on_tick():
        fired.append(sim.now)
        if len(fired) == 2:
            timer.stop()

    timer = PeriodicTimer(sim, 1.0, on_tick)
    timer.start()
    sim.run(until=10.0)
    assert fired == [1.0, 2.0]


def test_periodic_timer_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        PeriodicTimer(Simulator(), 0.0, lambda: None)


def test_periodic_timer_start_is_idempotent():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
    timer.start()
    timer.start()
    sim.run(until=2.5)
    assert fired == [1.0, 2.0]
