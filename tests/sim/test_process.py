"""Unit tests for generator-based processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Process, Timeout, Waiter, run_process


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def script():
        log.append(sim.now)
        yield Timeout(5.0)
        log.append(sim.now)

    Process(sim, script())
    sim.run()
    assert log == [0.0, 5.0]


def test_process_result_and_finished_waiter():
    sim = Simulator()

    def script():
        yield Timeout(1.0)
        return 42

    process = Process(sim, script())
    sim.run()
    assert process.result == 42
    assert not process.alive
    assert process.finished.triggered


def test_waiter_delivers_value():
    sim = Simulator()
    waiter = Waiter()
    received = []

    def script():
        value = yield waiter
        received.append(value)

    Process(sim, script())
    sim.schedule(3.0, waiter.trigger, "hello")
    sim.run()
    assert received == ["hello"]


def test_waiter_already_triggered_resumes_immediately():
    sim = Simulator()
    waiter = Waiter()
    waiter.trigger("early")
    received = []

    def script():
        value = yield waiter
        received.append((value, sim.now))

    Process(sim, script())
    sim.run()
    assert received == [("early", 0.0)]


def test_waiter_trigger_is_one_shot():
    waiter = Waiter()
    waiter.trigger(1)
    waiter.trigger(2)
    assert waiter.value == 1


def test_multiple_processes_on_one_waiter():
    sim = Simulator()
    waiter = Waiter()
    received = []

    def script(name):
        value = yield waiter
        received.append((name, value))

    Process(sim, script("a"))
    Process(sim, script("b"))
    sim.schedule(1.0, waiter.trigger, "go")
    sim.run()
    assert sorted(received) == [("a", "go"), ("b", "go")]


def test_interrupt_stops_process():
    sim = Simulator()
    log = []

    def script():
        log.append("start")
        yield Timeout(10.0)
        log.append("never")

    process = Process(sim, script())
    sim.run(until=1.0)
    process.interrupt()
    sim.run()
    assert log == ["start"]
    assert not process.alive


def test_yielding_garbage_raises():
    sim = Simulator()

    def script():
        yield "not a timeout"

    Process(sim, script())
    with pytest.raises(TypeError):
        sim.run()


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_run_process_helper():
    sim = Simulator()

    def script():
        yield Timeout(2.0)
        return "done"

    assert run_process(sim, script()) == "done"


def test_chained_processes():
    sim = Simulator()
    order = []

    def first():
        yield Timeout(1.0)
        order.append("first")
        return "payload"

    def second(dep):
        value = yield dep.finished
        order.append(("second", value))

    process = Process(sim, first())
    Process(sim, second(process))
    sim.run()
    assert order == ["first", ("second", "payload")]
