"""Unit and property tests for point arithmetic."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, distance, lerp

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
points = st.builds(Point, coords, coords)


def test_add_sub_roundtrip():
    a = Point(1.0, 2.0)
    b = Point(3.0, -4.0)
    assert (a + b) - b == a


def test_scale():
    assert Point(2.0, -3.0).scale(2.0) == Point(4.0, -6.0)


def test_norm():
    assert Point(3.0, 4.0).norm() == 5.0


def test_unit_has_norm_one():
    u = Point(3.0, 4.0).unit()
    assert math.isclose(u.norm(), 1.0)


def test_unit_of_zero_raises():
    with pytest.raises(ValueError):
        Point(0.0, 0.0).unit()


def test_distance_known_value():
    assert distance(Point(0, 0), Point(3, 4)) == 5.0


def test_lerp_endpoints_and_midpoint():
    a, b = Point(0, 0), Point(10, 20)
    assert lerp(a, b, 0.0) == a
    assert lerp(a, b, 1.0) == b
    assert lerp(a, b, 0.5) == Point(5, 10)


def test_as_tuple():
    assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


@given(points, points)
def test_distance_symmetric(a, b):
    assert math.isclose(distance(a, b), distance(b, a), abs_tol=1e-9)


@given(points)
def test_distance_to_self_is_zero(a):
    assert distance(a, a) == 0.0


@given(points, points, points)
def test_triangle_inequality(a, b, c):
    assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6


@given(points, points, st.floats(min_value=0.0, max_value=1.0))
def test_lerp_stays_on_segment(a, b, t):
    p = lerp(a, b, t)
    # |ap| + |pb| == |ab| within float tolerance
    assert math.isclose(
        distance(a, p) + distance(p, b), distance(a, b),
        rel_tol=1e-6, abs_tol=1e-6,
    )
