"""Unit and property tests for the simulation region."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Region


def test_contains_boundaries():
    region = Region(100, 50)
    assert region.contains(Point(0, 0))
    assert region.contains(Point(100, 50))
    assert not region.contains(Point(100.1, 10))
    assert not region.contains(Point(-0.1, 10))


def test_invalid_dimensions_raise():
    with pytest.raises(ValueError):
        Region(0, 10)
    with pytest.raises(ValueError):
        Region(10, -1)


def test_clamp_projects_outside_points():
    region = Region(100, 100)
    assert region.clamp(Point(-5, 50)) == Point(0, 50)
    assert region.clamp(Point(150, 120)) == Point(100, 100)
    assert region.clamp(Point(30, 40)) == Point(30, 40)


def test_random_point_inside():
    region = Region(1000, 1000)
    rng = random.Random(1)
    for _ in range(100):
        assert region.contains(region.random_point(rng))


def test_random_point_deterministic():
    region = Region(1000, 1000)
    a = region.random_point(random.Random(7))
    b = region.random_point(random.Random(7))
    assert a == b


def test_random_point_near_stays_inside_and_near():
    region = Region(1000, 1000)
    rng = random.Random(3)
    center = Point(50, 50)  # near a corner: candidates may fall outside
    for _ in range(50):
        p = region.random_point_near(center, 100, rng)
        assert region.contains(p)
        assert abs(p.x - center.x) <= 100 + 1e-9
        assert abs(p.y - center.y) <= 100 + 1e-9


@given(
    st.floats(min_value=1, max_value=1e4),
    st.floats(min_value=1, max_value=1e4),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_random_point_always_contained(w, h, seed):
    region = Region(w, h)
    assert region.contains(region.random_point(random.Random(seed)))
